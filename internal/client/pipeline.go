package client

import (
	"strconv"
	"time"

	"pamakv/internal/proto"
)

// opcode identifies a queued pipeline operation.
type opcode uint8

const (
	opGet opcode = iota
	opGets
	opSet
	opAdd
	opReplace
	opAppend
	opPrepend
	opCAS
	opDelete
	opIncr
	opDecr
	opTouch
)

var opVerbs = [...]string{
	opGet: "get", opGets: "gets", opSet: "set", opAdd: "add",
	opReplace: "replace", opAppend: "append", opPrepend: "prepend",
	opCAS: "cas", opDelete: "delete", opIncr: "incr", opDecr: "decr",
	opTouch: "touch",
}

// pop is one queued operation. value aliases the caller's slice until Exec
// renders it; num doubles as the CAS token and the incr/decr delta.
type pop struct {
	code    opcode
	key     string
	value   []byte
	flags   uint32
	exptime int64
	num     uint64
}

// rmeta is one operation's outcome before materialization: arena intervals
// instead of slices, because the arena may still grow while later batches
// read.
type rmeta struct {
	valOff, valEnd int
	flags          uint32
	cas            uint64
	number         uint64
	err            error
	hasVal         bool
}

// Result is one pipelined operation's outcome.
//
// Value is a view into the pipeline's reusable arena: valid until the next
// Exec (or Reset) on the same pipeline, never beyond. Copy it to keep it.
// Err carries the same sentinels the single-op methods return (ErrCacheMiss
// for a get miss, ErrNotStored, ErrCASConflict, ErrServerBusy, ...); a
// transport failure mid-batch sets it on every operation the failure left
// unanswered.
type Result struct {
	Value  []byte
	Flags  uint32
	CAS    uint64
	Number uint64
	Err    error
}

// Pipeline batches operations into one request write per owning server and
// reads the responses back in order — N round-trip latencies collapse into
// one. Queue operations with the typed methods, then Exec.
//
// A Pipeline is reusable (Exec clears the queue) but not safe for
// concurrent use; pool one per worker goroutine. In steady state Exec
// performs zero heap allocations for GET hits — results live in a reusable
// arena, the render buffer rides the pooled connection.
type Pipeline struct {
	c       *Client
	ops     []pop
	meta    []rmeta
	results []Result
	arena   []byte
	// batches[pi] lists op indexes owned by pool pi (multi-node only).
	batches [][]int32
}

// Pipeline returns an empty pipeline bound to the client.
func (c *Client) Pipeline() *Pipeline {
	p := &Pipeline{c: c}
	if c.sel != nil {
		p.batches = make([][]int32, len(c.pools))
	}
	return p
}

// Get queues a retrieval; the Result carries Value+Flags on a hit,
// ErrCacheMiss on a miss.
func (p *Pipeline) Get(key string) { p.push(pop{code: opGet, key: key}) }

// Gets queues a retrieval with the CAS token.
func (p *Pipeline) Gets(key string) { p.push(pop{code: opGets, key: key}) }

// Set queues an unconditional store. value must stay untouched until Exec.
func (p *Pipeline) Set(key string, flags uint32, exptime int64, value []byte) {
	p.push(pop{code: opSet, key: key, flags: flags, exptime: exptime, value: value})
}

// Add queues a store-if-absent.
func (p *Pipeline) Add(key string, flags uint32, exptime int64, value []byte) {
	p.push(pop{code: opAdd, key: key, flags: flags, exptime: exptime, value: value})
}

// Replace queues a store-if-present.
func (p *Pipeline) Replace(key string, flags uint32, exptime int64, value []byte) {
	p.push(pop{code: opReplace, key: key, flags: flags, exptime: exptime, value: value})
}

// Append queues a right-concatenation onto a present value.
func (p *Pipeline) Append(key string, value []byte) {
	p.push(pop{code: opAppend, key: key, value: value})
}

// Prepend queues a left-concatenation onto a present value.
func (p *Pipeline) Prepend(key string, value []byte) {
	p.push(pop{code: opPrepend, key: key, value: value})
}

// CAS queues a compare-and-swap against the token from a prior Gets.
func (p *Pipeline) CAS(key string, flags uint32, exptime int64, value []byte, cas uint64) {
	p.push(pop{code: opCAS, key: key, flags: flags, exptime: exptime, value: value, num: cas})
}

// Delete queues a removal.
func (p *Pipeline) Delete(key string) { p.push(pop{code: opDelete, key: key}) }

// Incr queues an atomic add; the Result carries the new value in Number.
func (p *Pipeline) Incr(key string, delta uint64) {
	p.push(pop{code: opIncr, key: key, num: delta})
}

// Decr queues an atomic subtract (clamped at zero).
func (p *Pipeline) Decr(key string, delta uint64) {
	p.push(pop{code: opDecr, key: key, num: delta})
}

// Touch queues an expiry rearm.
func (p *Pipeline) Touch(key string, exptime int64) {
	p.push(pop{code: opTouch, key: key, exptime: exptime})
}

// Len returns the number of queued operations.
func (p *Pipeline) Len() int { return len(p.ops) }

// Reset drops queued operations and invalidates previous Results.
func (p *Pipeline) Reset() { p.ops = p.ops[:0] }

func (p *Pipeline) push(op pop) {
	op.key = p.c.qual(op.key)
	p.ops = append(p.ops, op)
}

// Exec flushes the queue: operations are grouped by owning server, each
// group is rendered into one write on one pooled connection, and responses
// are read back in order. The returned slice has one Result per queued
// operation, in queue order; it and every Value in it are valid only until
// the next Exec or Reset.
//
// The returned error is reserved for whole-pipeline failures (closed
// client); per-operation outcomes — including transport failures — land in
// the Results so one dead server cannot mask the other batches' answers.
func (p *Pipeline) Exec() ([]Result, error) {
	if p.c.closed.Load() {
		return nil, ErrClientClosed
	}
	n := len(p.ops)
	if n == 0 {
		return nil, nil
	}
	p.arena = p.arena[:0]
	if cap(p.meta) < n {
		p.meta = make([]rmeta, n)
	}
	p.meta = p.meta[:n]
	for i := range p.meta {
		p.meta[i] = rmeta{}
	}
	// Keys are validated before anything is rendered: one malformed key
	// must fail its own operation, not desynchronize a whole connection.
	for i := range p.ops {
		op := &p.ops[i]
		if err := proto.CheckKey(op.key); err != nil {
			p.meta[i].err = err
		} else if len(op.value) > proto.MaxDataLen {
			p.meta[i].err = ErrValueTooLarge
		}
	}
	if p.c.sel == nil {
		p.runBatch(p.c.pools[0], nil)
	} else {
		for pi := range p.batches {
			p.batches[pi] = p.batches[pi][:0]
		}
		for i := range p.ops {
			if p.meta[i].err != nil {
				continue
			}
			pi := p.c.index[p.c.sel.Owner(p.ops[i].key)]
			p.batches[pi] = append(p.batches[pi], int32(i))
		}
		for pi, idxs := range p.batches {
			if len(idxs) > 0 {
				p.runBatch(p.c.pools[pi], idxs)
			}
		}
	}
	// Materialize arena views only now: every batch has read, the arena
	// has stopped growing, the intervals cannot dangle.
	if cap(p.results) < n {
		p.results = make([]Result, n)
	}
	p.results = p.results[:n]
	for i := range p.results {
		m := &p.meta[i]
		r := Result{Flags: m.flags, CAS: m.cas, Number: m.number, Err: m.err}
		if m.hasVal {
			r.Value = p.arena[m.valOff:m.valEnd]
		}
		p.results[i] = r
	}
	p.ops = p.ops[:0]
	return p.results, nil
}

// runBatch sends one server's operations on one pooled connection and reads
// the responses in order. idxs lists the op indexes in the batch; nil means
// every op (the single-server fast path). A transport failure closes the
// connection and stamps the error on every operation it left unanswered —
// an unacknowledged write's outcome is unknown, and only the caller knows
// whether re-issuing it is safe.
func (p *Pipeline) runBatch(pl *pool, idxs []int32) {
	n := len(idxs)
	if idxs == nil {
		n = len(p.ops)
	}
	opAt := func(k int) int {
		if idxs == nil {
			return k
		}
		return int(idxs[k])
	}
	cn, err := pl.get()
	if err != nil {
		p.failFrom(idxs, 0, err)
		return
	}
	cn.nc.SetDeadline(time.Now().Add(p.c.cfg.OpTimeout))
	cn.req = cn.req[:0]
	rendered := 0
	for k := 0; k < n; k++ {
		i := opAt(k)
		if p.meta[i].err != nil && idxs == nil {
			continue // invalid op skipped on the fast path
		}
		cn.req = appendPop(cn.req, &p.ops[i])
		rendered++
	}
	if rendered == 0 {
		pl.put(cn)
		return
	}
	if _, err := cn.bw.Write(cn.req); err == nil {
		err = cn.bw.Flush()
	}
	if err != nil {
		cn.nc.Close()
		p.failFrom(idxs, 0, err)
		return
	}
	for k := 0; k < n; k++ {
		i := opAt(k)
		if p.meta[i].err != nil && idxs == nil {
			continue
		}
		resp, err := cn.rr.Next()
		if err != nil {
			cn.nc.Close()
			p.failFrom(idxs, k, err)
			return
		}
		p.record(i, resp)
	}
	pl.put(cn)
}

// failFrom stamps err on batch positions from >= k whose ops have no
// verdict yet.
func (p *Pipeline) failFrom(idxs []int32, k int, err error) {
	if idxs == nil {
		for i := k; i < len(p.ops); i++ {
			if p.meta[i].err == nil {
				p.meta[i].err = err
			}
		}
		return
	}
	for _, i := range idxs[k:] {
		if p.meta[i].err == nil {
			p.meta[i].err = err
		}
	}
}

// record maps one response onto one operation's meta, copying any value
// bytes into the pipeline arena (the response's views die at the next
// rr.Next on the same connection).
func (p *Pipeline) record(i int, r *proto.Resp) {
	m := &p.meta[i]
	switch p.ops[i].code {
	case opGet, opGets:
		if r.Status != proto.StatusEnd {
			m.err = respErr(r)
			return
		}
		if len(r.Values) == 0 {
			m.err = ErrCacheMiss
			return
		}
		v := r.Values[0]
		m.valOff = len(p.arena)
		p.arena = append(p.arena, v.Data...)
		m.valEnd = len(p.arena)
		m.hasVal = true
		m.flags = v.Flags
		m.cas = v.CAS
	case opSet, opAdd, opReplace, opAppend, opPrepend, opCAS:
		switch r.Status {
		case proto.StatusStored:
		case proto.StatusNotStored:
			m.err = ErrNotStored
		case proto.StatusExists:
			m.err = ErrCASConflict
		case proto.StatusNotFound:
			m.err = ErrCacheMiss
		default:
			m.err = respErr(r)
		}
	case opDelete:
		switch r.Status {
		case proto.StatusDeleted:
		case proto.StatusNotFound:
			m.err = ErrCacheMiss
		default:
			m.err = respErr(r)
		}
	case opIncr, opDecr:
		switch r.Status {
		case proto.StatusNumber:
			m.number = r.Number
		case proto.StatusNotFound:
			m.err = ErrCacheMiss
		default:
			m.err = respErr(r)
		}
	case opTouch:
		switch r.Status {
		case proto.StatusTouched:
		case proto.StatusNotFound:
			m.err = ErrCacheMiss
		default:
			m.err = respErr(r)
		}
	}
}

// appendPop renders one queued operation to its wire form.
func appendPop(dst []byte, op *pop) []byte {
	switch op.code {
	case opGet, opGets, opDelete:
		return appendKeyed(dst, opVerbs[op.code], op.key)
	case opSet, opAdd, opReplace, opAppend, opPrepend, opCAS:
		return appendStore(dst, opVerbs[op.code], op.key, op.flags, op.exptime, op.num, op.value)
	case opIncr, opDecr:
		dst = append(dst, opVerbs[op.code]...)
		dst = append(dst, ' ')
		dst = append(dst, op.key...)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, op.num, 10)
		return append(dst, '\r', '\n')
	default: // opTouch
		dst = append(dst, "touch "...)
		dst = append(dst, op.key...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, op.exptime, 10)
		return append(dst, '\r', '\n')
	}
}
