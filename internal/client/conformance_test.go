package client_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pamakv/internal/client"
	"pamakv/internal/proto"
	"pamakv/internal/server"
)

// step is one entry of the conformance matrix: an operation, its operands,
// and the outcome the Memcached text protocol promises. The same table runs
// through the single-op client surface and the pipelined one, and (under
// the memcached build tag) against a real memcached.
type step struct {
	name    string
	verb    string
	key     string
	value   string
	flags   uint32
	delta   uint64
	exptime int64

	// useCAS makes a cas step spend the token saved by the last gets;
	// stale bumps it so the swap must lose.
	useCAS bool
	stale  bool
	// saveCAS makes a gets step record its token for later cas steps.
	saveCAS bool

	want error // expected sentinel; nil means success
	// wantReject expects a server-side CLIENT_ERROR (no sentinel maps it).
	wantReject bool
	wantValue  string
	wantFlags  uint32
	wantNum    uint64
}

// matrix is the full command conformance table: every verb the client
// exposes, hit, miss, and error paths. Steps run in order; later steps
// depend on earlier ones.
var matrix = []step{
	{name: "get miss", verb: "get", key: "k1", want: client.ErrCacheMiss},
	{name: "set", verb: "set", key: "k1", value: "hello", flags: 7},
	{name: "get hit", verb: "get", key: "k1", wantValue: "hello", wantFlags: 7},
	{name: "add on existing", verb: "add", key: "k1", value: "x", want: client.ErrNotStored},
	{name: "add on fresh", verb: "add", key: "k2", value: "fresh", flags: 1},
	{name: "get added", verb: "get", key: "k2", wantValue: "fresh", wantFlags: 1},
	{name: "replace existing", verb: "replace", key: "k2", value: "swapped", flags: 3},
	{name: "get replaced", verb: "get", key: "k2", wantValue: "swapped", wantFlags: 3},
	{name: "replace missing", verb: "replace", key: "k3", value: "x", want: client.ErrNotStored},
	{name: "append", verb: "append", key: "k1", value: "!!"},
	{name: "get appended", verb: "get", key: "k1", wantValue: "hello!!", wantFlags: 7},
	{name: "append missing", verb: "append", key: "k3", value: "x", want: client.ErrNotStored},
	{name: "prepend", verb: "prepend", key: "k1", value: ">>"},
	{name: "get prepended", verb: "get", key: "k1", wantValue: ">>hello!!", wantFlags: 7},
	{name: "prepend missing", verb: "prepend", key: "k3", value: "x", want: client.ErrNotStored},
	{name: "gets token", verb: "gets", key: "k1", wantValue: ">>hello!!", wantFlags: 7, saveCAS: true},
	{name: "cas wins", verb: "cas", key: "k1", value: "casval", useCAS: true},
	{name: "cas stale", verb: "cas", key: "k1", value: "loser", useCAS: true, stale: true, want: client.ErrCASConflict},
	{name: "get cas result", verb: "get", key: "k1", wantValue: "casval"},
	{name: "cas missing", verb: "cas", key: "k3", value: "x", useCAS: true, want: client.ErrCacheMiss},
	{name: "seed counter", verb: "set", key: "num", value: "10"},
	{name: "incr", verb: "incr", key: "num", delta: 5, wantNum: 15},
	{name: "decr", verb: "decr", key: "num", delta: 3, wantNum: 12},
	{name: "decr clamps at zero", verb: "decr", key: "num", delta: 100, wantNum: 0},
	{name: "incr missing", verb: "incr", key: "k3", delta: 1, want: client.ErrCacheMiss},
	{name: "seed text", verb: "set", key: "text", value: "abc"},
	{name: "incr non-numeric", verb: "incr", key: "text", delta: 1, wantReject: true},
	{name: "touch", verb: "touch", key: "k1", exptime: 1000},
	{name: "touch missing", verb: "touch", key: "k3", exptime: 1000, want: client.ErrCacheMiss},
	{name: "delete", verb: "delete", key: "k1"},
	{name: "delete again", verb: "delete", key: "k1", want: client.ErrCacheMiss},
	{name: "get deleted", verb: "get", key: "k1", want: client.ErrCacheMiss},
}

// checkOutcome asserts one step's observed outcome against the table.
func checkOutcome(t *testing.T, st step, value []byte, flags uint32, num uint64, err error) {
	t.Helper()
	switch {
	case st.wantReject:
		if err == nil || errors.Is(err, client.ErrCacheMiss) || errors.Is(err, client.ErrNotStored) ||
			errors.Is(err, client.ErrCASConflict) {
			t.Fatalf("%s: want server rejection, got %v", st.name, err)
		}
		if !strings.Contains(err.Error(), "server rejected") {
			t.Fatalf("%s: want CLIENT_ERROR mapping, got %v", st.name, err)
		}
		return
	case st.want != nil:
		if !errors.Is(err, st.want) {
			t.Fatalf("%s: want %v, got %v", st.name, st.want, err)
		}
		return
	case err != nil:
		t.Fatalf("%s: %v", st.name, err)
	}
	switch st.verb {
	case "get", "gets":
		if string(value) != st.wantValue {
			t.Fatalf("%s: value %q, want %q", st.name, value, st.wantValue)
		}
		if flags != st.wantFlags {
			t.Fatalf("%s: flags %d, want %d", st.name, flags, st.wantFlags)
		}
	case "incr", "decr":
		if num != st.wantNum {
			t.Fatalf("%s: number %d, want %d", st.name, num, st.wantNum)
		}
	}
}

// runMatrixDirect drives the matrix through the single-op client surface.
// pfx namespaces the keys so reruns against a shared live server stay
// independent.
func runMatrixDirect(t *testing.T, c *client.Client, pfx string) {
	var savedCAS uint64
	for _, st := range matrix {
		key := pfx + st.key
		var (
			value []byte
			flags uint32
			num   uint64
			err   error
		)
		switch st.verb {
		case "get", "gets":
			var it client.Item
			if st.verb == "get" {
				it, err = c.Get(key)
			} else {
				it, err = c.Gets(key)
				if err == nil && st.saveCAS {
					if it.CAS == 0 {
						t.Fatalf("%s: gets returned zero CAS token", st.name)
					}
					savedCAS = it.CAS
				}
			}
			value, flags = it.Value, it.Flags
		case "set":
			err = c.Set(key, st.flags, st.exptime, []byte(st.value))
		case "add":
			err = c.Add(key, st.flags, st.exptime, []byte(st.value))
		case "replace":
			err = c.Replace(key, st.flags, st.exptime, []byte(st.value))
		case "append":
			err = c.Append(key, []byte(st.value))
		case "prepend":
			err = c.Prepend(key, []byte(st.value))
		case "cas":
			cas := savedCAS
			if st.stale {
				cas += 99
			}
			err = c.CompareAndSwap(key, st.flags, st.exptime, []byte(st.value), cas)
		case "delete":
			err = c.Delete(key)
		case "incr":
			num, err = c.Incr(key, st.delta)
		case "decr":
			num, err = c.Decr(key, st.delta)
		case "touch":
			err = c.Touch(key, st.exptime)
		default:
			t.Fatalf("%s: unknown verb %q", st.name, st.verb)
		}
		checkOutcome(t, st, value, flags, num, err)
	}
}

// runMatrixPipelined drives the same matrix through Pipeline, batching
// consecutive steps and flushing only when a step needs the CAS token a
// pending gets has not yet produced — so most of the table really does ride
// multi-op batches.
func runMatrixPipelined(t *testing.T, c *client.Client, pfx string) {
	p := c.Pipeline()
	var pending []step
	var savedCAS uint64

	flush := func() {
		if len(pending) == 0 {
			return
		}
		results, err := p.Exec()
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		if len(results) != len(pending) {
			t.Fatalf("Exec returned %d results for %d ops", len(results), len(pending))
		}
		for i, st := range pending {
			r := results[i]
			checkOutcome(t, st, r.Value, r.Flags, r.Number, r.Err)
			if st.saveCAS && r.Err == nil {
				if r.CAS == 0 {
					t.Fatalf("%s: gets returned zero CAS token", st.name)
				}
				savedCAS = r.CAS
			}
		}
		pending = pending[:0]
	}

	for _, st := range matrix {
		if st.useCAS {
			flush()
		}
		key := pfx + st.key
		switch st.verb {
		case "get":
			p.Get(key)
		case "gets":
			p.Gets(key)
		case "set":
			p.Set(key, st.flags, st.exptime, []byte(st.value))
		case "add":
			p.Add(key, st.flags, st.exptime, []byte(st.value))
		case "replace":
			p.Replace(key, st.flags, st.exptime, []byte(st.value))
		case "append":
			p.Append(key, []byte(st.value))
		case "prepend":
			p.Prepend(key, []byte(st.value))
		case "cas":
			cas := savedCAS
			if st.stale {
				cas += 99
			}
			p.CAS(key, st.flags, st.exptime, []byte(st.value), cas)
		case "delete":
			p.Delete(key)
		case "incr":
			p.Incr(key, st.delta)
		case "decr":
			p.Decr(key, st.delta)
		case "touch":
			p.Touch(key, st.exptime)
		default:
			t.Fatalf("%s: unknown verb %q", st.name, st.verb)
		}
		pending = append(pending, st)
		// A gets a later cas depends on must be flushed before the token
		// is spent; flushing right after queuing keeps batches maximal
		// without tracking the dependency backwards.
		if st.saveCAS {
			flush()
		}
	}
	flush()
}

func newClient(t testing.TB, cfg client.Config) *client.Client {
	t.Helper()
	c, err := client.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConformanceDirect(t *testing.T) {
	addr := startServer(t, server.Options{})
	c := newClient(t, client.Config{Addrs: []string{addr}})
	runMatrixDirect(t, c, "d.")
}

func TestConformancePipelined(t *testing.T) {
	addr := startServer(t, server.Options{})
	c := newClient(t, client.Config{Addrs: []string{addr}})
	runMatrixPipelined(t, c, "p.")
}

// TestConformanceAdmin covers the non-keyed commands and the client-side
// request validation the matrix cannot express.
func TestConformanceAdmin(t *testing.T) {
	addr := startServer(t, server.Options{})
	c := newClient(t, client.Config{Addrs: []string{addr}})

	if err := c.Set("gone", 0, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatalf("flush_all: %v", err)
	}
	if _, err := c.Get("gone"); !errors.Is(err, client.ErrCacheMiss) {
		t.Fatalf("get after flush_all: %v", err)
	}

	v, err := c.Version()
	if err != nil || v == "" {
		t.Fatalf("version: %q, %v", v, err)
	}

	stats, err := c.ServerStats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if m := stats[addr]; m["cmd_set"] == "" {
		t.Fatalf("stats missing cmd_set: %v", m)
	}

	// Keys that would desynchronize the stream are refused before the wire.
	for _, bad := range []string{"", "has space", "has\nnewline", strings.Repeat("k", proto.MaxKeyLen+1)} {
		if err := c.Set(bad, 0, 0, []byte("x")); err == nil {
			t.Fatalf("set %q: want key error", bad)
		}
		if _, err := c.Get(bad); err == nil {
			t.Fatalf("get %q: want key error", bad)
		}
	}
	if err := c.Set("big", 0, 0, bytes.Repeat([]byte("v"), proto.MaxDataLen+1)); !errors.Is(err, client.ErrValueTooLarge) {
		t.Fatalf("oversized set: %v", err)
	}

	// The same invalid key inside a pipeline fails its own slot only.
	p := c.Pipeline()
	p.Set("ok1", 0, 0, []byte("a"))
	p.Set("bad key", 0, 0, []byte("b"))
	p.Get("ok1")
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err == nil || results[2].Err != nil {
		t.Fatalf("mixed-validity batch: %+v", results)
	}
	if string(results[2].Value) != "a" {
		t.Fatalf("value after invalid slot: %q", results[2].Value)
	}
}

// TestShardedClientRouting checks that a multi-address client splits keys
// across members exactly as the cluster Selector owns them: every key is
// readable through the sharded client, and each lives on precisely the node
// the selector names.
func TestShardedClientRouting(t *testing.T) {
	addr1 := startServer(t, server.Options{})
	addr2 := startServer(t, server.Options{})
	sharded := newClient(t, client.Config{Addrs: []string{addr1, addr2}, VNodes: 64})
	direct1 := newClient(t, client.Config{Addrs: []string{addr1}})
	direct2 := newClient(t, client.Config{Addrs: []string{addr2}})

	const n = 200
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("route%03d", i)
		if err := sharded.Set(key, 0, 0, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	on1, on2 := 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("route%03d", i)
		it, err := sharded.Get(key)
		if err != nil || string(it.Value) != key {
			t.Fatalf("sharded get %s: %v", key, err)
		}
		_, err1 := direct1.Get(key)
		_, err2 := direct2.Get(key)
		switch {
		case err1 == nil && errors.Is(err2, client.ErrCacheMiss):
			on1++
		case err2 == nil && errors.Is(err1, client.ErrCacheMiss):
			on2++
		default:
			t.Fatalf("key %s: on node1 err=%v, node2 err=%v (want exactly one owner)", key, err1, err2)
		}
	}
	if on1 == 0 || on2 == 0 {
		t.Fatalf("routing degenerate: %d/%d keys on node1/node2", on1, on2)
	}

	// A pipelined mixed batch spanning both owners comes back in queue
	// order with per-key routing intact.
	p := sharded.Pipeline()
	for i := 0; i < n; i++ {
		p.Get(fmt.Sprintf("route%03d", i))
	}
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := fmt.Sprintf("route%03d", i)
		if r.Err != nil || string(r.Value) != want {
			t.Fatalf("pipelined sharded get %d: %q, %v", i, r.Value, r.Err)
		}
	}
}

// TestHedgedGet arms penalty-derived hedging and checks both that expensive
// keys fire a hedge when the primary stalls and that cheap keys never do.
func TestHedgedGet(t *testing.T) {
	addr := startServer(t, server.Options{})
	hedge := client.Config{
		Addrs:     []string{addr},
		PenaltyOf: func(key string) float64 { return 2.0 }, // subclass 4: 3ms hedge
	}
	hedge.Hedge.Delays = [5]time.Duration{0, 0, 0, 0, 3 * time.Millisecond}
	c := newClient(t, hedge)
	if err := c.Set("pricey", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The in-process server answers fast, so force the hedge window shut
	// on a healthy path first: a normal get must not hedge... but we can't
	// stall pama-server per-request. Instead check the cheap path never
	// hedges and the expensive path's answer is correct whether or not the
	// race fired.
	for i := 0; i < 20; i++ {
		it, err := c.Get("pricey")
		if err != nil || string(it.Value) != "v" {
			t.Fatalf("hedged get: %q, %v", it.Value, err)
		}
	}

	cheap := client.Config{
		Addrs:     []string{addr},
		PenaltyOf: func(key string) float64 { return 0.0005 }, // subclass 0: never hedge
	}
	cheap.Hedge.Delays = [5]time.Duration{0, 0, 0, 0, 3 * time.Millisecond}
	cc := newClient(t, cheap)
	if err := cc.Set("cheap", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := cc.Get("cheap"); err != nil {
			t.Fatal(err)
		}
	}
	if got := cc.Stats().Hedges; got != 0 {
		t.Fatalf("cheap keys hedged %d times; hedging must be penalty-gated", got)
	}
}
