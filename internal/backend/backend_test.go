package backend

import (
	"bytes"
	"testing"
	"time"

	"pamakv/internal/penalty"
)

func TestFetchDeterministic(t *testing.T) {
	s := New(penalty.Default(), func(uint64) int { return 256 })
	sz1, p1, v1 := s.Fetch("alpha", true)
	sz2, p2, v2 := s.Fetch("alpha", true)
	if sz1 != sz2 || p1 != p2 || !bytes.Equal(v1, v2) {
		t.Fatal("Fetch is not deterministic per key")
	}
	if sz1 != 256 {
		t.Fatalf("size = %d, want sizer's 256", sz1)
	}
	if len(v1) != 256 {
		t.Fatalf("value length = %d, want 256", len(v1))
	}
}

func TestFetchNilSizerDefaults(t *testing.T) {
	s := New(penalty.Default(), nil)
	sz, _, _ := s.Fetch("k", false)
	if sz != 100 {
		t.Fatalf("default size = %d, want 100", sz)
	}
}

func TestFetchNoFillSkipsValue(t *testing.T) {
	s := New(penalty.Default(), nil)
	_, _, v := s.Fetch("k", false)
	if v != nil {
		t.Fatal("fill=false should not synthesize a value")
	}
}

func TestCountersAccumulate(t *testing.T) {
	s := New(penalty.Uniform(0.5), nil)
	for i := 0; i < 4; i++ {
		s.Fetch("k", false)
	}
	if s.Fetches() != 4 {
		t.Fatalf("Fetches = %d, want 4", s.Fetches())
	}
	if got := s.TotalPenalty(); got < 1.99 || got > 2.01 {
		t.Fatalf("TotalPenalty = %v, want ~2.0", got)
	}
}

func TestPenaltyMatchesFetch(t *testing.T) {
	s := New(penalty.Default(), func(uint64) int { return 512 })
	_, p, _ := s.Fetch("beta", false)
	if got := s.Penalty("beta", 512); got != p {
		t.Fatalf("Penalty(%v) != Fetch penalty (%v)", got, p)
	}
}

func TestRealTimeSleeps(t *testing.T) {
	s := NewRealTime(penalty.Uniform(0.2), nil, 0.1) // 20ms sleep
	start := time.Now()
	s.Fetch("k", false)
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("real-time fetch returned after %v, want >=~20ms", el)
	}
}

func TestSynthesizeShapes(t *testing.T) {
	if got := Synthesize(1, 0); len(got) != 0 {
		t.Fatal("size 0 should give empty value")
	}
	if got := Synthesize(1, -3); len(got) != 0 {
		t.Fatal("negative size should give empty value")
	}
	a, b := Synthesize(1, 33), Synthesize(2, 33)
	if bytes.Equal(a, b) {
		t.Fatal("different keys should synthesize different bodies")
	}
	if len(a) != 33 {
		t.Fatalf("length %d, want 33", len(a))
	}
}

func TestFetchConcurrent(t *testing.T) {
	s := New(penalty.Default(), nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				s.Fetch("shared", false)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Fetches() != 8000 {
		t.Fatalf("Fetches = %d, want 8000", s.Fetches())
	}
}

func TestFetchErrNoFaultsMatchesFetch(t *testing.T) {
	s := New(penalty.Default(), func(uint64) int { return 64 })
	sz, pen, val, err := s.FetchErr("k", true)
	if err != nil {
		t.Fatalf("FetchErr without faults errored: %v", err)
	}
	sz2, pen2, val2 := s.Fetch("k", true)
	if sz != sz2 || pen != pen2 || !bytes.Equal(val, val2) {
		t.Fatal("FetchErr without faults disagrees with Fetch")
	}
}

func TestFaultInjectionAlwaysFails(t *testing.T) {
	s := New(penalty.Default(), nil)
	s.SetFaults(&Faults{ErrRate: 1})
	for i := 0; i < 20; i++ {
		if _, _, _, err := s.FetchErr("k", false); err != ErrUnavailable {
			t.Fatalf("fetch %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	if s.InjectedErrors() != 20 {
		t.Fatalf("InjectedErrors = %d, want 20", s.InjectedErrors())
	}
	if s.Fetches() != 20 {
		t.Fatalf("Fetches = %d, want 20 (failed fetches still hit the backend)", s.Fetches())
	}
	s.SetFaults(nil)
	if _, _, _, err := s.FetchErr("k", false); err != nil {
		t.Fatalf("after clearing faults: %v", err)
	}
}

func TestFaultInjectionRateApproximate(t *testing.T) {
	s := New(penalty.Default(), nil)
	s.SetFaults(&Faults{ErrRate: 0.2, Seed: 42})
	const n = 5000
	fails := 0
	for i := 0; i < n; i++ {
		if _, _, _, err := s.FetchErr("k", false); err != nil {
			fails++
		}
	}
	if got := float64(fails) / n; got < 0.15 || got > 0.25 {
		t.Fatalf("observed error rate %.3f, want ~0.20", got)
	}
}

func TestFaultInjectionDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		s := New(penalty.Default(), nil)
		s.SetFaults(&Faults{ErrRate: 0.5, Seed: seed})
		out := make([]bool, 100)
		for i := range out {
			_, _, _, err := s.FetchErr("k", false)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault stream not reproducible for equal seeds")
		}
	}
}

func TestFaultInjectionSpikes(t *testing.T) {
	s := New(penalty.Default(), nil)
	s.SetFaults(&Faults{SpikeRate: 1, SpikeSleep: 2 * time.Millisecond})
	start := time.Now()
	if _, _, _, err := s.FetchErr("k", false); err != nil {
		t.Fatalf("spike-only faults should not error: %v", err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("spike did not delay the fetch (took %s)", d)
	}
	if s.InjectedSpikes() != 1 {
		t.Fatalf("InjectedSpikes = %d, want 1", s.InjectedSpikes())
	}
}
