// Package backend simulates the back-end store (database / computation tier)
// that a key-value cache shields. On a cache miss the front end fetches the
// value from here, paying the item's miss penalty, and then SETs it back
// into the cache — the GET-miss → SET pattern the paper uses to estimate
// penalties from traces.
//
// Two modes share one type: accounting mode returns the penalty as a number
// (the simulator adds it to service time), and real-time mode additionally
// sleeps for a scaled-down fraction of it (the live network server uses
// this, so a demo actually feels the penalty difference).
package backend

import (
	"errors"
	"sync/atomic"
	"time"

	"pamakv/internal/kv"
	"pamakv/internal/obs"
	"pamakv/internal/penalty"
	"pamakv/internal/singleflight"
)

// ErrUnavailable reports an injected back-end failure (see Faults). Callers
// treat it like a transient database outage: retry, degrade, or surface a
// miss.
var ErrUnavailable = errors.New("backend: unavailable")

// Faults configures failure injection on FetchErr, for resilience testing of
// the read-through path. The decision stream is derived deterministically
// from Seed and the fetch sequence number, so a run is reproducible and safe
// for concurrent use without locks.
type Faults struct {
	// ErrRate is the probability in [0,1] that a fetch fails with
	// ErrUnavailable (after any injected latency).
	ErrRate float64
	// SpikeRate is the probability in [0,1] that a fetch sleeps an extra
	// SpikeSleep before completing — a latency spike.
	SpikeRate float64
	// SpikeSleep is the extra wall-clock latency of one spike.
	SpikeSleep time.Duration
	// Seed derives the fault decision stream; two stores with equal Seed
	// and traffic inject identical faults.
	Seed uint64
}

// enabled reports whether any fault class is active.
func (f *Faults) enabled() bool {
	return f != nil && (f.ErrRate > 0 || (f.SpikeRate > 0 && f.SpikeSleep > 0))
}

// Sizer reports the canonical value size in bytes for a key hash; workloads
// provide it so the backend regenerates the same value a trace would have
// SET. A nil Sizer defaults to 100-byte values.
type Sizer func(keyHash uint64) int

// Store is a simulated back end.
type Store struct {
	model penalty.Model
	sizer Sizer
	// sleepScale > 0 makes Fetch sleep penalty*sleepScale wall-clock time.
	sleepScale float64

	fetches atomic.Uint64
	// penaltyNanos accumulates total simulated penalty, in nanoseconds,
	// for diagnostics.
	penaltyNanos atomic.Uint64

	// faults, when set, injects failures into FetchErr (never into Fetch,
	// which simulators rely on to always succeed).
	faults   atomic.Pointer[Faults]
	errs     atomic.Uint64
	spikes   atomic.Uint64
	faultSeq atomic.Uint64

	// fetchLat records wall-clock FetchErr latency (the serving path's view
	// of the back end, spikes and sleeps included). Fetch, the simulators'
	// accounting-mode entry point, is deliberately not timed: its callers
	// measure simulated time, not wall time.
	fetchLat *obs.Hist

	// flight dedupes concurrent FetchSharedErr calls per key; sfShared
	// counts the calls answered by another caller's in-flight fetch.
	flight   singleflight.Group
	sfShared atomic.Uint64
}

// New returns an accounting-mode store.
func New(model penalty.Model, sizer Sizer) *Store {
	return &Store{model: model, sizer: sizer, fetchLat: obs.NewHist(1e-6, 7)}
}

// NewRealTime returns a store that sleeps penalty*scale per fetch. scale 1.0
// reproduces penalties in real time; demos use 0.01–0.1.
func NewRealTime(model penalty.Model, sizer Sizer, scale float64) *Store {
	return &Store{model: model, sizer: sizer, sleepScale: scale, fetchLat: obs.NewHist(1e-6, 7)}
}

// Fetch produces the value for key: its size, its miss penalty in seconds,
// and (when fill is true) a synthesized value body. It is safe for
// concurrent use.
func (s *Store) Fetch(key string, fill bool) (size int, pen float64, value []byte) {
	h := kv.HashString(key)
	size = 100
	if s.sizer != nil {
		size = s.sizer(h)
	}
	pen = s.model.Of(h, size)
	s.fetches.Add(1)
	s.penaltyNanos.Add(uint64(pen * 1e9))
	if s.sleepScale > 0 {
		time.Sleep(time.Duration(pen * s.sleepScale * float64(time.Second)))
	}
	if fill {
		value = Synthesize(h, size)
	}
	return size, pen, value
}

// SetFaults installs (or, with nil, clears) a fault-injection plan. It may
// be called while traffic is running; the change applies to subsequent
// FetchErr calls.
func (s *Store) SetFaults(f *Faults) {
	if f != nil {
		cp := *f
		s.faults.Store(&cp)
		return
	}
	s.faults.Store(nil)
}

// FetchErr is Fetch under the installed fault plan: a fetch may pay an
// injected latency spike and may fail with ErrUnavailable. Without a plan it
// behaves exactly like Fetch. Failed fetches still count toward Fetches()
// (the back end was hit; it just misbehaved) but do not accumulate penalty.
func (s *Store) FetchErr(key string, fill bool) (size int, pen float64, value []byte, err error) {
	if s.fetchLat != nil {
		start := time.Now()
		defer func() { s.fetchLat.Observe(time.Since(start).Seconds()) }()
	}
	f := s.faults.Load()
	if !f.enabled() {
		size, pen, value = s.Fetch(key, fill)
		return size, pen, value, nil
	}
	// Derive two independent uniform draws from the fetch sequence number,
	// so the fault stream is deterministic per Seed and lock-free.
	seq := s.faultSeq.Add(1)
	spikeDraw := uniform(kv.Mix64(f.Seed ^ seq))
	errDraw := uniform(kv.Mix64(f.Seed ^ seq ^ 0x9e3779b97f4a7c15))
	if f.SpikeRate > 0 && f.SpikeSleep > 0 && spikeDraw < f.SpikeRate {
		s.spikes.Add(1)
		time.Sleep(f.SpikeSleep)
	}
	if f.ErrRate > 0 && errDraw < f.ErrRate {
		s.fetches.Add(1)
		s.errs.Add(1)
		return 0, 0, nil, ErrUnavailable
	}
	size, pen, value = s.Fetch(key, fill)
	return size, pen, value, nil
}

// sharedResult carries one fetch's outcome across a singleflight.
type sharedResult struct {
	size  int
	pen   float64
	value []byte
}

// FetchSharedErr is FetchErr behind a per-key singleflight: while a fetch
// for key is in flight, concurrent callers wait for its result instead of
// hitting the back end again, so N simultaneous misses of one key cost one
// backend call (and share one failure). This is the serving path's
// thundering-herd guard — a retry storm on a hot missing key amplifies into
// exactly one upstream fetch chain. The fill flag of the first (leading)
// caller decides whether the shared result carries a value body; the
// serving path always fills, so mixed callers are not a concern there.
// Sequential calls (no overlap) each fetch: deduplication is concurrency
// control, not caching.
//
// The shared value slice is handed to every waiter: callers must treat it
// as immutable (the serving path copies it into the engine and the response
// buffer).
func (s *Store) FetchSharedErr(key string, fill bool) (size int, pen float64, value []byte, err error) {
	v, err, shared := s.flight.Do(key, func() (any, error) {
		size, pen, value, err := s.FetchErr(key, fill)
		if err != nil {
			return nil, err
		}
		return sharedResult{size: size, pen: pen, value: value}, nil
	})
	if shared {
		s.sfShared.Add(1)
	}
	if err != nil {
		return 0, 0, nil, err
	}
	r := v.(sharedResult)
	return r.size, r.pen, r.value, nil
}

// SharedFetches returns how many FetchSharedErr calls coalesced with at
// least one concurrent caller onto a single backend fetch (the flight
// leader included, so 64 concurrent misses of one key count 64 here and 1
// in Fetches).
func (s *Store) SharedFetches() uint64 { return s.sfShared.Load() }

// uniform maps a mixed 64-bit value to [0,1).
func uniform(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// InjectedErrors returns the number of fetches failed by fault injection.
func (s *Store) InjectedErrors() uint64 { return s.errs.Load() }

// InjectedSpikes returns the number of fetches delayed by an injected
// latency spike.
func (s *Store) InjectedSpikes() uint64 { return s.spikes.Load() }

// Penalty returns the penalty for a key without fetching (used by replayers
// that know an item's size already).
func (s *Store) Penalty(key string, size int) float64 {
	return s.model.Of(kv.HashString(key), size)
}

// PenaltyOf returns the penalty a Fetch of key would pay, deriving the
// item's size from the sizer exactly as Fetch would — the cheap
// estimate-without-fetching entry point the cluster hedging policy uses.
func (s *Store) PenaltyOf(key string) float64 {
	h := kv.HashString(key)
	size := 100
	if s.sizer != nil {
		size = s.sizer(h)
	}
	return s.model.Of(h, size)
}

// FetchLatency snapshots the wall-clock latency histogram of FetchErr calls
// (failed attempts included — a slow failure is still latency the serving
// path paid). Zero-valued for a store that has served none.
func (s *Store) FetchLatency() obs.HistSnapshot {
	if s.fetchLat == nil {
		return obs.NewHist(1e-6, 7).Snapshot()
	}
	return s.fetchLat.Snapshot()
}

// Fetches returns the number of Fetch calls served.
func (s *Store) Fetches() uint64 { return s.fetches.Load() }

// TotalPenalty returns the accumulated simulated penalty in seconds.
func (s *Store) TotalPenalty() float64 {
	return float64(s.penaltyNanos.Load()) / 1e9
}

// Synthesize deterministically generates a value body of the given size from
// a key hash, so repeated fetches of one key return identical bytes.
func Synthesize(keyHash uint64, size int) []byte {
	if size <= 0 {
		return []byte{}
	}
	v := make([]byte, size)
	x := keyHash
	for i := 0; i < size; i += 8 {
		x = kv.Mix64(x)
		for j := 0; j < 8 && i+j < size; j++ {
			v[i+j] = byte(x >> (8 * uint(j)))
		}
	}
	return v
}
