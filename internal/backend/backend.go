// Package backend simulates the back-end store (database / computation tier)
// that a key-value cache shields. On a cache miss the front end fetches the
// value from here, paying the item's miss penalty, and then SETs it back
// into the cache — the GET-miss → SET pattern the paper uses to estimate
// penalties from traces.
//
// Two modes share one type: accounting mode returns the penalty as a number
// (the simulator adds it to service time), and real-time mode additionally
// sleeps for a scaled-down fraction of it (the live network server uses
// this, so a demo actually feels the penalty difference).
package backend

import (
	"sync/atomic"
	"time"

	"pamakv/internal/kv"
	"pamakv/internal/penalty"
)

// Sizer reports the canonical value size in bytes for a key hash; workloads
// provide it so the backend regenerates the same value a trace would have
// SET. A nil Sizer defaults to 100-byte values.
type Sizer func(keyHash uint64) int

// Store is a simulated back end.
type Store struct {
	model penalty.Model
	sizer Sizer
	// sleepScale > 0 makes Fetch sleep penalty*sleepScale wall-clock time.
	sleepScale float64

	fetches atomic.Uint64
	// penaltyNanos accumulates total simulated penalty, in nanoseconds,
	// for diagnostics.
	penaltyNanos atomic.Uint64
}

// New returns an accounting-mode store.
func New(model penalty.Model, sizer Sizer) *Store {
	return &Store{model: model, sizer: sizer}
}

// NewRealTime returns a store that sleeps penalty*scale per fetch. scale 1.0
// reproduces penalties in real time; demos use 0.01–0.1.
func NewRealTime(model penalty.Model, sizer Sizer, scale float64) *Store {
	return &Store{model: model, sizer: sizer, sleepScale: scale}
}

// Fetch produces the value for key: its size, its miss penalty in seconds,
// and (when fill is true) a synthesized value body. It is safe for
// concurrent use.
func (s *Store) Fetch(key string, fill bool) (size int, pen float64, value []byte) {
	h := kv.HashString(key)
	size = 100
	if s.sizer != nil {
		size = s.sizer(h)
	}
	pen = s.model.Of(h, size)
	s.fetches.Add(1)
	s.penaltyNanos.Add(uint64(pen * 1e9))
	if s.sleepScale > 0 {
		time.Sleep(time.Duration(pen * s.sleepScale * float64(time.Second)))
	}
	if fill {
		value = Synthesize(h, size)
	}
	return size, pen, value
}

// Penalty returns the penalty for a key without fetching (used by replayers
// that know an item's size already).
func (s *Store) Penalty(key string, size int) float64 {
	return s.model.Of(kv.HashString(key), size)
}

// Fetches returns the number of Fetch calls served.
func (s *Store) Fetches() uint64 { return s.fetches.Load() }

// TotalPenalty returns the accumulated simulated penalty in seconds.
func (s *Store) TotalPenalty() float64 {
	return float64(s.penaltyNanos.Load()) / 1e9
}

// Synthesize deterministically generates a value body of the given size from
// a key hash, so repeated fetches of one key return identical bytes.
func Synthesize(keyHash uint64, size int) []byte {
	if size <= 0 {
		return []byte{}
	}
	v := make([]byte, size)
	x := keyHash
	for i := 0; i < size; i += 8 {
		x = kv.Mix64(x)
		for j := 0; j < 8 && i+j < size; j++ {
			v[i+j] = byte(x >> (8 * uint(j)))
		}
	}
	return v
}
