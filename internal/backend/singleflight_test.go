package backend

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pamakv/internal/penalty"
)

// TestFetchSharedCollapsesConcurrentMisses is the thundering-herd
// regression test: 64 concurrent fetches of one key must cost exactly one
// backend call, and every caller must receive the same value.
func TestFetchSharedCollapsesConcurrentMisses(t *testing.T) {
	// A real-time store with a uniform 50ms penalty at full scale: every
	// fetch sleeps long enough that all 64 callers overlap one flight.
	s := NewRealTime(penalty.Uniform(0.05), func(uint64) int { return 64 }, 1.0)

	const callers = 64
	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	values := make([][]byte, callers)
	errs := make([]error, callers)
	ready.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			ready.Done()
			<-start
			_, _, values[i], errs[i] = s.FetchSharedErr("hot-key", true)
		}(i)
	}
	ready.Wait()
	close(start)
	wg.Wait()

	if got := s.Fetches(); got != 1 {
		t.Fatalf("%d concurrent misses cost %d backend fetches, want 1", callers, got)
	}
	if got := s.SharedFetches(); got != callers {
		t.Fatalf("SharedFetches = %d, want %d", got, callers)
	}
	for i := 1; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(values[i], values[0]) {
			t.Fatalf("caller %d received a different value", i)
		}
	}
}

// TestFetchSharedSequentialFetchesEachTime: singleflight is concurrency
// control, not caching — non-overlapping calls each hit the backend.
func TestFetchSharedSequentialFetchesEachTime(t *testing.T) {
	s := New(penalty.Uniform(0.01), nil)
	for i := 0; i < 3; i++ {
		if _, _, _, err := s.FetchSharedErr("k", true); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Fetches(); got != 3 {
		t.Fatalf("3 sequential fetches cost %d backend calls, want 3", got)
	}
	if got := s.SharedFetches(); got != 0 {
		t.Fatalf("sequential fetches recorded %d shared, want 0", got)
	}
}

// TestFetchSharedSharesFailures: concurrent callers coalesced onto a failed
// flight all see the failure, and the backend was still hit only once.
func TestFetchSharedSharesFailures(t *testing.T) {
	s := New(penalty.Uniform(0.05), nil)
	// Every fetch pays a 50ms spike then fails: the spike keeps the flight
	// open long enough for all callers to coalesce onto it.
	s.SetFaults(&Faults{ErrRate: 1.0, SpikeRate: 1.0, SpikeSleep: 50 * time.Millisecond, Seed: 1})

	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			<-start
			_, _, _, errs[i] = s.FetchSharedErr("k", true)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d succeeded under ErrRate 1.0", i)
		}
	}
	// All coalesced calls share flights; far fewer backend hits than
	// callers (scheduling may split them across a few flights).
	if got := s.Fetches(); got > callers/2 {
		t.Fatalf("%d concurrent failing fetches hit the backend %d times", callers, got)
	}
}
