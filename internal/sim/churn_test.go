package sim

import (
	"strings"
	"testing"
)

// TestChurnFigureGate is the CI churn gate's simulator half: on a node
// add, penalty-ordered warm handoff must recover the hit ratio
// measurably faster than a cold rebalance, and must carry the lowest
// post-event miss-penalty bill of the three disciplines. Everything is
// deterministic (fixed seeds, one engine set per mode, synchronous
// streaming between windows), so the gate is exact, not statistical.
func TestChurnFigureGate(t *testing.T) {
	if testing.Short() {
		t.Skip("churn gate replays hundreds of thousands of requests")
	}
	r, err := RunChurnFigure(0.25)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]*ChurnRun{}
	for _, run := range r.Runs {
		byMode[run.Mode] = run
		t.Logf("%s: steady %.4f dip %.4f recover %d post-penalty %.0fs streamed %d",
			run.Mode, run.SteadyHit, run.DipHit, run.RecoverWindows, run.PostPenalty, run.TransferredKeys)
	}
	cold, warm, unord := byMode[ChurnCold], byMode[ChurnWarm], byMode[ChurnWarmUnordered]
	if cold == nil || warm == nil || unord == nil {
		t.Fatalf("missing modes in %v", r.Runs)
	}

	// All modes replayed the same stream: identical steady state.
	if cold.SteadyHit != warm.SteadyHit || cold.SteadyHit != unord.SteadyHit {
		t.Fatalf("steady states diverge: cold %.4f unordered %.4f warm %.4f",
			cold.SteadyHit, unord.SteadyHit, warm.SteadyHit)
	}
	if cold.TransferredKeys != 0 {
		t.Fatalf("cold rebalance streamed %d keys", cold.TransferredKeys)
	}
	if warm.TransferredKeys == 0 || unord.TransferredKeys == 0 {
		t.Fatal("warm modes streamed nothing; the comparison proves nothing")
	}

	// The headline claim: warm handoff recovers the hit ratio measurably
	// faster than cold. (-1 = never recovered inside the run.)
	warmRec, coldRec := warm.RecoverWindows, cold.RecoverWindows
	if warmRec < 0 {
		t.Fatalf("warm handoff never recovered (cold: %d)", coldRec)
	}
	if coldRec >= 0 && warmRec >= coldRec {
		t.Fatalf("warm handoff recovered in %d windows, cold in %d — no speedup", warmRec, coldRec)
	}

	// The penalty claim: ordering the stream by miss penalty minimizes
	// the churn's penalty bill — below cold, and at or below the same
	// stream sent in key order.
	if warm.PostPenalty >= cold.PostPenalty {
		t.Fatalf("warm post-event penalty %.0fs not below cold %.0fs", warm.PostPenalty, cold.PostPenalty)
	}
	if warm.PostPenalty > unord.PostPenalty {
		t.Fatalf("penalty-ordered stream cost %.0fs, key-ordered %.0fs — ordering bought nothing",
			warm.PostPenalty, unord.PostPenalty)
	}

	var sb strings.Builder
	if err := RenderChurn(&sb, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"window\tmode\thit_ratio", "cold", "warm-unordered", "# node added at window"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("RenderChurn output missing %q", want)
		}
	}
}

// TestRunChurnValidation pins the spec validation and the no-plan path.
func TestRunChurnValidation(t *testing.T) {
	if _, err := RunChurn(ChurnSpec{Mode: ChurnCold, Nodes: 1}); err == nil {
		t.Fatal("single-node churn accepted")
	}
	spec := ChurnSpecFor("nonsense", 0.01)
	spec.WarmupWindows, spec.PostWindows = 2, 2
	spec.WindowLen = 1_000
	if _, err := RunChurn(spec); err == nil {
		t.Fatal("unknown churn mode accepted")
	}
}
