package sim

import (
	"strings"
	"testing"

	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/workload"
)

// tinyWorkload is a fast ETC-like workload for unit tests.
func tinyWorkload() workload.Config {
	cfg := workload.ETC()
	cfg.Keys = 1 << 14
	cfg.ClassWeights = cfg.ClassWeights[:8]
	return cfg
}

func tinySpec(kind string) Spec {
	return Spec{
		Workload:       tinyWorkload(),
		CacheBytes:     8 << 20, // 8 slabs
		Requests:       60_000,
		MetricsWindow:  10_000,
		EngineWindow:   5_000,
		Policy:         PolicySpec{Kind: kind},
		SampleSubClass: -1,
	}
}

func TestPolicySpecBuild(t *testing.T) {
	kinds := []string{"memcached", "static", "", "psa", "pama", "pre-pama", "twemcache", "facebook-age", "mrc-hit", "mrc-time", "lama-hit", "lama-time"}
	for _, k := range kinds {
		if _, err := (PolicySpec{Kind: k}).Build(); err != nil {
			t.Errorf("Build(%q): %v", k, err)
		}
	}
	if _, err := (PolicySpec{Kind: "bogus"}).Build(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPolicySpecBuildPAMAVariants(t *testing.T) {
	p, _ := (PolicySpec{Kind: "pama"}).Build()
	if p.(*core.PAMA).Segments() != 3 {
		t.Fatal("default pama should have m=2 (3 segments)")
	}
	p, _ = (PolicySpec{Kind: "pama", PAMA: core.Config{M: 0, PenaltyAware: true}}).Build()
	if p.(*core.PAMA).Segments() != 1 {
		t.Fatal("explicit M=0 should give 1 segment")
	}
	p, _ = (PolicySpec{Kind: "pre-pama"}).Build()
	if p.(*core.PAMA).Name() != "pre-pama" || p.SubclassBounds() != nil {
		t.Fatal("pre-pama misconfigured")
	}
}

func TestRunGDSFEngine(t *testing.T) {
	spec := tinySpec("gdsf")
	// GDSF packs payload bytes with no slab fragmentation; shrink the
	// cache so eviction pressure actually materializes.
	spec.CacheBytes = 2 << 20
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.MeanHitRatio() <= 0 {
		t.Fatal("gdsf produced no hits")
	}
	if res.Decisions != nil {
		t.Fatal("gdsf must not report PAMA decisions")
	}
	if res.SlabSeries.Points[0].Slabs != nil {
		t.Fatal("gdsf has no slab series")
	}
	if res.Stats.Gets == 0 || res.Stats.Evictions == 0 {
		t.Fatalf("gdsf stats empty: %+v", res.Stats)
	}
}

func TestRunProducesSeries(t *testing.T) {
	res, err := Run(tinySpec("pama"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(res.Series.Points))
	}
	last := res.Series.Final()
	if last.GetsServed == 0 || last.HitRatio <= 0 || last.HitRatio > 1 {
		t.Fatalf("final point implausible: %+v", last)
	}
	if res.Stats.Gets == 0 || res.Stats.Sets == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
	if res.Decisions == nil {
		t.Fatal("pama run should report decisions")
	}
	if res.ServiceHist.Count() == 0 {
		t.Fatal("service histogram empty")
	}
	if len(res.SlabSeries.Points) == 0 || res.SlabSeries.Points[0].Slabs == nil {
		t.Fatal("slab series missing")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinySpec("pama"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec("pama"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("same spec diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	for i := range a.Series.Points {
		if a.Series.Points[i].HitRatio != b.Series.Points[i].HitRatio {
			t.Fatalf("window %d hit ratio differs", i)
		}
	}
}

func TestRunHitRatioImprovesWithCache(t *testing.T) {
	small := tinySpec("memcached")
	small.CacheBytes = 4 << 20
	big := tinySpec("memcached")
	big.CacheBytes = 64 << 20
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Series.MeanHitRatio() <= rs.Series.MeanHitRatio() {
		t.Fatalf("bigger cache should hit more: %.3f vs %.3f",
			rb.Series.MeanHitRatio(), rs.Series.MeanHitRatio())
	}
}

func TestRunRepeatsExtendSeries(t *testing.T) {
	spec := tinySpec("memcached")
	spec.Repeats = 2
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Gets; got < 2*50_000 {
		t.Fatalf("gets = %d, want about double the single-repeat count", got)
	}
	// Second pass replays identical keys: hit ratio must improve.
	n := len(res.Series.Points)
	if res.Series.Points[n-1].HitRatio <= res.Series.Points[0].HitRatio {
		t.Fatal("repeat pass did not benefit from warm cache")
	}
}

func TestRunBurstInjects(t *testing.T) {
	spec := tinySpec("psa")
	spec.Burst = &BurstSpec{At: 20_000, FracOfCache: 0.10, Classes: []int{2, 3, 4}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(tinySpec("psa"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sets <= base.Stats.Sets {
		t.Fatal("burst did not add SETs")
	}
}

func TestRunSubclassSampling(t *testing.T) {
	spec := tinySpec("pama")
	spec.SampleSubClass = 0
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Series.Final()
	if len(p.Extra) != 5 {
		t.Fatalf("Extra = %v, want 5 subclass shares", p.Extra)
	}
}

func TestRunUniformPenaltyMakesSchemesAgreeOnWeighting(t *testing.T) {
	// Under a uniform penalty model, PAMA's penalty weighting is a
	// constant scale of pre-PAMA's counting; both should achieve very
	// similar hit ratios (subclassing collapses to one populated
	// subclass).
	mkSpec := func(kind string) Spec {
		s := tinySpec(kind)
		s.Workload.Penalty = penalty.Uniform(0.1)
		return s
	}
	a, err := Run(mkSpec("pama"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mkSpec("pre-pama"))
	if err != nil {
		t.Fatal(err)
	}
	da := a.Series.MeanHitRatio() - b.Series.MeanHitRatio()
	if da < -0.05 || da > 0.05 {
		t.Fatalf("uniform-penalty hit ratios diverged: pama=%.3f pre=%.3f",
			a.Series.MeanHitRatio(), b.Series.MeanHitRatio())
	}
}

func TestRunMatrixParallelOrder(t *testing.T) {
	specs := []Spec{tinySpec("memcached"), tinySpec("psa"), tinySpec("pama")}
	res, err := RunMatrix(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil || r.Spec.Policy.Kind != specs[i].Policy.Kind {
			t.Fatalf("result %d out of order or nil", i)
		}
	}
}

func TestRunMatrixReportsErrors(t *testing.T) {
	bad := tinySpec("bogus")
	res, err := RunMatrix([]Spec{tinySpec("memcached"), bad}, 2)
	if err == nil {
		t.Fatal("matrix error swallowed")
	}
	if res[0] == nil {
		t.Fatal("good spec should still produce a result")
	}
	if res[1] != nil {
		t.Fatal("bad spec should produce nil")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{Policy: PolicySpec{Kind: "pama"}}.withDefaults()
	if !s.Geometry.Equal(kv.DefaultGeometry()) {
		t.Fatal("geometry default missing")
	}
	if s.Requests == 0 || s.MetricsWindow == 0 || s.EngineWindow == 0 || s.HitTime == 0 {
		t.Fatalf("defaults incomplete: %+v", s)
	}
	if s.Name != "pama" {
		t.Fatalf("name default = %q", s.Name)
	}
}
