package sim

// The churn figure: what happens to a live cluster's hit ratio and miss
// penalty when a node is added, under three rebalance disciplines —
//
//	cold            the moved arc starts empty on the new node and is
//	                refilled only by demand misses (classic memcached
//	                resharding);
//	warm-unordered  the old owners stream their moved residents to the
//	                new node at a bounded rate, in key order;
//	warm            the same stream, highest miss penalty first — the
//	                live handoff's policy (membership.Plan, the very
//	                function the server runs).
//
// Three identical clusters replay the same request stream, so the curves
// differ only by discipline. The figure backs the ROADMAP claim that
// penalty-ordered warm handoff recovers the hit ratio (and suppresses
// the penalty spike) measurably faster than a cold rebalance.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/kv"
	"pamakv/internal/membership"
	"pamakv/internal/workload"
)

// Churn rebalance disciplines.
const (
	ChurnCold          = "cold"
	ChurnWarmUnordered = "warm-unordered"
	ChurnWarm          = "warm"
)

// ChurnSpec parameterizes one churn simulation.
type ChurnSpec struct {
	// Mode is one of the Churn* disciplines.
	Mode string
	// Nodes is the pre-add cluster size; one node is added at the event.
	Nodes int
	// BytesPerNode is each node's engine budget.
	BytesPerNode int64
	// Workload generates the request stream (shared across modes).
	Workload workload.Config
	// WindowLen is the measurement window in requests.
	WindowLen uint64
	// WarmupWindows run before the add; PostWindows after it.
	WarmupWindows, PostWindows int
	// RatePerWindow bounds warm streaming to this many keys between
	// windows — the sim's stand-in for the live HandoffRate.
	RatePerWindow int
}

// ChurnWindow is one measurement window's outcome.
type ChurnWindow struct {
	Window      int
	HitRatio    float64
	MissPenalty float64
	// Transferred counts handoff keys streamed before this window.
	Transferred int
}

// ChurnRun is one discipline's full trajectory.
type ChurnRun struct {
	Mode    string
	Windows []ChurnWindow
	// SteadyHit is the mean hit ratio over the last pre-event windows.
	SteadyHit float64
	// DipHit is the worst post-event window.
	DipHit float64
	// RecoverWindows is how many windows after the event the hit ratio
	// needed to get back within ChurnRecoverFrac of steady state; -1 if
	// it never did inside the run.
	RecoverWindows int
	// PostPenalty is the cumulative post-event miss penalty in seconds —
	// the cost of the churn under this discipline.
	PostPenalty float64
	// TransferredKeys is the total streamed by the handoff.
	TransferredKeys int
	Elapsed         time.Duration
}

// ChurnFigureResult is the churn figure: one run per discipline over the
// same stream.
type ChurnFigureResult struct {
	Runs []*ChurnRun
	// EventWindow is the window index at which the node was added.
	EventWindow int
	WindowLen   uint64
}

// churnMove is one planned transfer: a HandoffKey plus its source engine.
type churnMove struct {
	src int
	hk  membership.HandoffKey
}

// RunChurn executes one churn simulation.
func RunChurn(spec ChurnSpec) (*ChurnRun, error) {
	if spec.Nodes < 2 {
		return nil, fmt.Errorf("sim: churn needs >= 2 nodes, have %d", spec.Nodes)
	}
	addrs := make([]string, spec.Nodes+1)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%d", i)
	}
	addrIdx := make(map[string]int, len(addrs))
	for i, a := range addrs {
		addrIdx[a] = i
	}
	oldRing := cluster.NewRing(addrs[:spec.Nodes], 64)
	newRing := cluster.NewRing(addrs, 64)

	engines := make([]*cache.Cache, len(addrs))
	for i := range engines {
		pol, err := (PolicySpec{Kind: "pama"}).Build()
		if err != nil {
			return nil, err
		}
		eng, err := cache.New(cache.Config{
			Geometry:   kv.DefaultGeometry(),
			CacheBytes: spec.BytesPerNode,
			WindowLen:  50_000,
		}, pol)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	gen, err := workload.New(spec.Workload)
	if err != nil {
		return nil, err
	}
	model := spec.Workload.Penalty

	run := &ChurnRun{Mode: spec.Mode, RecoverWindows: -1}
	ring := oldRing
	var plan []churnMove
	eventStep := uint64(spec.WarmupWindows) * spec.WindowLen
	totalSteps := eventStep + uint64(spec.PostWindows)*spec.WindowLen
	eventWindow := spec.WarmupWindows

	start := time.Now()
	var winHits, winGets uint64
	var winPen float64
	window := 0
	for step := uint64(0); step < totalSteps; step++ {
		if step == eventStep {
			// The node joins: cutover first (routing flips), then — for
			// the warm disciplines — plan the stream exactly the way the
			// live handoff does, per departing owner.
			ring = newRing
			if spec.Mode != ChurnCold {
				for i := 0; i < spec.Nodes; i++ {
					self := addrs[i]
					for _, hk := range membership.Plan(engines[i], func(key string) (string, bool) {
						o := newRing.Owner(key)
						return o, o != self
					}) {
						plan = append(plan, churnMove{src: i, hk: hk})
					}
				}
				switch spec.Mode {
				case ChurnWarm:
					// membership.Plan's order (penalty desc, key asc) is
					// already per-engine; re-sort the merged plan globally.
					sort.Slice(plan, func(i, j int) bool {
						if plan[i].hk.Pen != plan[j].hk.Pen {
							return plan[i].hk.Pen > plan[j].hk.Pen
						}
						return plan[i].hk.Key < plan[j].hk.Key
					})
				case ChurnWarmUnordered:
					sort.Slice(plan, func(i, j int) bool { return plan[i].hk.Key < plan[j].hk.Key })
				default:
					return nil, fmt.Errorf("sim: unknown churn mode %q", spec.Mode)
				}
			}
		}

		r, err := gen.Next()
		if err != nil {
			return nil, err
		}
		key := kv.KeyString(r.Key)
		size := int(r.Size)
		eng := engines[addrIdx[ring.Owner(key)]]
		switch r.Op {
		case kv.Get:
			pen := model.Of(kv.HashString(key), size)
			_, _, hit := eng.Get(key, size, pen, nil)
			winGets++
			if hit {
				winHits++
			} else {
				winPen += pen
				if err := eng.Set(key, size, pen, 0, nil); err != nil && !ignorableSet(err) {
					return nil, err
				}
			}
		case kv.Set:
			pen := model.Of(kv.HashString(key), size)
			if err := eng.Set(key, size, pen, 0, nil); err != nil && !ignorableSet(err) {
				return nil, err
			}
		case kv.Delete:
			eng.Delete(key)
		}

		if (step+1)%spec.WindowLen != 0 {
			continue
		}
		// Window boundary: record, then (post-event) stream one window's
		// handoff budget, exactly like the live rate limiter.
		hr := 0.0
		if winGets > 0 {
			hr = float64(winHits) / float64(winGets)
		}
		run.Windows = append(run.Windows, ChurnWindow{
			Window: window, HitRatio: hr, MissPenalty: winPen,
			Transferred: run.TransferredKeys,
		})
		winHits, winGets, winPen = 0, 0, 0
		window++
		for n := 0; n < spec.RatePerWindow && len(plan) > 0; {
			mv := plan[0]
			plan = plan[1:]
			src := engines[mv.src]
			if _, _, ok := src.Get(mv.hk.Key, mv.hk.Size, mv.hk.Pen, nil); !ok {
				continue // evicted since the scan; costs no budget
			}
			dst := engines[addrIdx[mv.hk.Target]]
			if err := dst.Set(mv.hk.Key, mv.hk.Size, mv.hk.Pen, 0, nil); err != nil && !ignorableSet(err) {
				return nil, err
			}
			src.Delete(mv.hk.Key)
			run.TransferredKeys++
			n++
		}
	}
	run.Elapsed = time.Since(start)

	for i, eng := range engines {
		if err := eng.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("sim: churn node %s: %w", addrs[i], err)
		}
	}

	// Steady state: mean of the last half of the warmup windows.
	half := eventWindow / 2
	var steady float64
	for _, w := range run.Windows[half:eventWindow] {
		steady += w.HitRatio
	}
	run.SteadyHit = steady / float64(eventWindow-half)
	run.DipHit = 1.0
	post := run.Windows[eventWindow:]
	for _, w := range post {
		if w.HitRatio < run.DipHit {
			run.DipHit = w.HitRatio
		}
		run.PostPenalty += w.MissPenalty
	}
	// Recovered = the hit ratio is back within ChurnRecoverFrac of steady
	// and *stays* there (a single lucky window inside the dip does not
	// count — window-to-window noise is on the order of the threshold).
	const sustain = 3
	threshold := ChurnRecoverFrac * run.SteadyHit
	streak := 0
	for i, w := range post {
		if w.HitRatio >= threshold {
			streak++
			if streak == sustain {
				run.RecoverWindows = i - sustain + 1
				break
			}
		} else {
			streak = 0
		}
	}
	return run, nil
}

// ignorableSet reports whether a fill error is an expected capacity
// refusal rather than a bug.
func ignorableSet(err error) bool {
	return err == cache.ErrNoSpace || err == cache.ErrTooLarge
}

// ChurnRecoverFrac defines "recovered": the first post-event window
// whose hit ratio is back within 1% of steady state.
const ChurnRecoverFrac = 0.99

// ChurnSpecFor returns the figure's spec for one mode at the given
// request scale. All modes share the stream (same workload, same seed).
// The zipf exponent is flatter than ETC's so the moved arc's warm tail
// refills slowly on demand — exactly the regime where a warm handoff
// earns its keep; a needle-sharp hot set would re-warm itself in one
// window and hide the effect the figure measures.
func ChurnSpecFor(mode string, scale float64) ChurnSpec {
	wl := workload.ETC()
	wl.Name = "churn"
	wl.Keys = 250_000
	wl.ZipfS = 0.75
	wl.ColdFrac = 0
	wl.RotateEvery = 0
	wl.Seed = 77
	post := int(scaled(500_000, scale) / 5_000)
	if post > 100 {
		post = 100
	}
	if post < 50 {
		post = 50
	}
	return ChurnSpec{
		Mode:          mode,
		Nodes:         3,
		BytesPerNode:  24 << 20,
		Workload:      wl,
		WindowLen:     5_000,
		WarmupWindows: 24,
		PostWindows:   post,
		RatePerWindow: 2_000,
	}
}

// RunChurnFigure executes the churn figure: the three disciplines in
// parallel over the same stream.
func RunChurnFigure(scale float64) (*ChurnFigureResult, error) {
	modes := []string{ChurnCold, ChurnWarmUnordered, ChurnWarm}
	out := &ChurnFigureResult{Runs: make([]*ChurnRun, len(modes))}
	var wg sync.WaitGroup
	errs := make([]error, len(modes))
	for i, mode := range modes {
		wg.Add(1)
		go func(i int, mode string) {
			defer wg.Done()
			out.Runs[i], errs[i] = RunChurn(ChurnSpecFor(mode, scale))
		}(i, mode)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	spec := ChurnSpecFor(ChurnCold, scale)
	out.EventWindow = spec.WarmupWindows
	out.WindowLen = spec.WindowLen
	return out, nil
}

// RenderChurn writes the churn figure as TSV: one row per (window, mode)
// plus summary comment lines.
func RenderChurn(w io.Writer, r *ChurnFigureResult) error {
	if _, err := fmt.Fprintln(w, "window\tmode\thit_ratio\tmiss_penalty_s\ttransferred"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		for _, win := range run.Windows {
			if _, err := fmt.Fprintf(w, "%d\t%s\t%.4f\t%.2f\t%d\n",
				win.Window, run.Mode, win.HitRatio, win.MissPenalty, win.Transferred); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# node added at window %d (window = %d requests)\n",
		r.EventWindow, r.WindowLen); err != nil {
		return err
	}
	for _, run := range r.Runs {
		rec := "never"
		if run.RecoverWindows >= 0 {
			rec = fmt.Sprintf("%d windows", run.RecoverWindows)
		}
		if _, err := fmt.Fprintf(w, "# %s: steady %.4f, dip %.4f, recovered in %s, post-event miss penalty %.1fs, %d keys streamed\n",
			run.Mode, run.SteadyHit, run.DipHit, rec, run.PostPenalty, run.TransferredKeys); err != nil {
			return err
		}
	}
	return nil
}
