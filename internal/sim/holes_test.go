package sim

import (
	"strings"
	"testing"
)

// TestHolesAblationGate is the memory-holes gate: on the mixed-size trace
// the learned geometry must waste at least 20% fewer bytes to internal
// fragmentation than the power-of-two baseline, without giving up hit
// ratio. CI runs this at this reduced scale; results/fig_holes.tsv records
// the full-scale run.
func TestHolesAblationGate(t *testing.T) {
	f, err := FigureByID("holes", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMatrix(f.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	po2, learned := res[0], res[1]
	if po2 == nil || learned == nil {
		t.Fatal("missing results")
	}
	t.Logf("po2: holes=%d items=%d hit=%.4f", po2.HolesBytes, po2.Items, po2.Series.MeanHitRatio())
	t.Logf("learned: holes=%d items=%d hit=%.4f reslabs=%d moved=%d slots=%v",
		learned.HolesBytes, learned.Items, learned.Series.MeanHitRatio(),
		learned.Stats.Reslabs, learned.Stats.ReslabMoved, learned.SlotSizes)
	if learned.Stats.Reslabs == 0 {
		t.Fatal("learner never re-slabbed; ablation exercised nothing")
	}
	// Holes are compared per resident item: under memory pressure the two
	// geometries hold different item counts, and per-item waste is what
	// the boundary solver minimizes.
	po2PerItem := float64(po2.HolesBytes) / float64(po2.Items)
	learnedPerItem := float64(learned.HolesBytes) / float64(learned.Items)
	if learnedPerItem > 0.80*po2PerItem {
		t.Fatalf("learned geometry wastes %.1f bytes/item vs po2 %.1f — less than the required 20%% reduction",
			learnedPerItem, po2PerItem)
	}
	if learned.Series.MeanHitRatio() < po2.Series.MeanHitRatio()-0.01 {
		t.Fatalf("learned hit ratio %.4f fell more than a point below po2 %.4f",
			learned.Series.MeanHitRatio(), po2.Series.MeanHitRatio())
	}
	var sb strings.Builder
	if err := RenderHoles(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "holes_per_item") || !strings.Contains(sb.String(), "# final geometry: learned") {
		t.Fatalf("RenderHoles output malformed:\n%s", sb.String())
	}
}
