// Package sim drives request streams through the cache engine and collects
// the paper's evaluation metrics: per-window hit ratio and average GET
// service time (windows counted in served GETs, paper x-axis), per-class
// slab allocation series, and service-time histograms.
//
// A Spec fully describes one experiment run (workload, cache size, policy,
// optional cold burst, repeats); Run executes it; RunMatrix executes a set
// of Specs on a bounded worker pool — experiment matrices are embarrassingly
// parallel, and this is where the repository spends its cores.
package sim

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/gds"
	"pamakv/internal/geom"
	"pamakv/internal/kv"
	"pamakv/internal/metrics"
	"pamakv/internal/penalty"
	"pamakv/internal/policy"
	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

// PolicySpec names and parameterizes an allocation policy.
type PolicySpec struct {
	// Kind is one of "memcached", "psa", "pama", "pre-pama",
	// "twemcache", "facebook-age", "mrc-hit", "mrc-time", "lama-hit",
	// "lama-time", "camp", "size-aware" — or "gdsf", which selects the
	// item-granularity GreedyDual-Size-Frequency engine instead of a
	// slab policy.
	Kind string
	// PAMA configures pama/pre-pama. The zero value selects paper
	// defaults; to run PAMA with a custom M (including M=0, Fig. 10),
	// set PenaltyAware explicitly: core.Config{M: 0, PenaltyAware: true}.
	PAMA core.Config
	// PSAPeriod is PSA's miss period (0 = default 1000).
	PSAPeriod uint64
	// Seed feeds randomized policies (twemcache).
	Seed uint64
}

// Build constructs the policy.
func (p PolicySpec) Build() (cache.Policy, error) {
	switch p.Kind {
	case "memcached", "static", "":
		return policy.NewStatic(), nil
	case "psa":
		return policy.NewPSA(p.PSAPeriod), nil
	case "pama":
		cfg := p.PAMA
		if cfg.M == 0 && !cfg.PenaltyAware {
			cfg = core.DefaultConfig()
		} else {
			cfg.PenaltyAware = true
		}
		return core.New(cfg), nil
	case "pre-pama":
		cfg := p.PAMA
		cfg.PenaltyAware = false
		cfg.Bounds = nil
		if cfg.M == 0 {
			cfg.M = 2
		}
		return core.New(cfg), nil
	case "twemcache":
		return policy.NewTwemcache(p.Seed), nil
	case "facebook-age":
		return policy.NewFacebookAge(), nil
	case "mrc-hit":
		return policy.NewMRC(policy.ObjectiveMissRatio), nil
	case "mrc-time":
		return policy.NewMRC(policy.ObjectiveAvgTime), nil
	case "lama-hit":
		return policy.NewLAMA(policy.ObjectiveMissRatio), nil
	case "lama-time":
		return policy.NewLAMA(policy.ObjectiveAvgTime), nil
	case "camp":
		return policy.NewCAMP(), nil
	case "size-aware":
		return policy.NewSizeAware(), nil
	case "gdsf":
		// GDSF is a whole engine, not a slab policy; Run special-cases
		// it. Returning a sentinel keeps Build usable for validation.
		return nil, nil
	default:
		return nil, fmt.Errorf("sim: unknown policy kind %q", p.Kind)
	}
}

// engine is the cache surface the runner drives; *cache.Cache implements it
// natively and gdsfEngine adapts gds.Cache.
type engine interface {
	Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool)
	Set(key string, size int, pen float64, flags uint32, value []byte) error
	Delete(key string) bool
	Stats() cache.Stats
	SnapshotSlabs() []int
	SnapshotSubSlabs(class int) []float64
	CheckInvariants() error
}

// gdsfEngine adapts the GDSF cache to the runner's surface.
type gdsfEngine struct{ g *gds.Cache }

func (e gdsfEngine) Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool) {
	return e.g.Get(key, sizeHint, penHint, buf)
}
func (e gdsfEngine) Set(key string, size int, pen float64, flags uint32, value []byte) error {
	return e.g.Set(key, size, pen, flags, value)
}
func (e gdsfEngine) Delete(key string) bool { return e.g.Delete(key) }
func (e gdsfEngine) Stats() cache.Stats {
	st := e.g.Stats()
	return cache.Stats{
		Gets: st.Gets, Hits: st.Hits, Misses: st.Misses,
		Sets: st.Sets, Deletes: st.Deletes,
		Evictions: st.Evictions, TooLarge: st.TooLarge,
	}
}
func (e gdsfEngine) SnapshotSlabs() []int           { return nil }
func (e gdsfEngine) SnapshotSubSlabs(int) []float64 { return nil }
func (e gdsfEngine) CheckInvariants() error         { return e.g.CheckInvariants() }

// BurstSpec injects the paper §IV-C cold flood.
type BurstSpec struct {
	// At is the GET-request position where the burst starts.
	At uint64
	// FracOfCache sizes the burst relative to the cache (paper: 0.10).
	FracOfCache float64
	// Classes are the impacted size bands (paper: three).
	Classes []int
}

// Spec describes one experiment run.
type Spec struct {
	// Name labels the run's series.
	Name string
	// Workload generates the request stream.
	Workload workload.Config
	// CacheBytes is the cache size.
	CacheBytes int64
	// Geometry overrides kv.DefaultGeometry when non-zero.
	Geometry kv.Geometry
	// Requests is the stream length per repeat.
	Requests uint64
	// Repeats replays the identical stream this many times (Fig. 7/8
	// repeat the APP trace to strip cold misses); 0 means 1.
	Repeats int
	// MetricsWindow is GETs per reported point (paper: 1M, scaled).
	MetricsWindow uint64
	// EngineWindow is the engine's value window in accesses.
	EngineWindow uint64
	// HitTime is the GET-hit service time in seconds.
	HitTime float64
	// Policy selects the allocation scheme.
	Policy PolicySpec
	// Tracker selects segment tracking (PAMA only).
	Tracker cache.TrackerKind
	// Adaptive enables the online slab-geometry learner (nil = static
	// geometry). Ignored by the gdsf engine.
	Adaptive *geom.Config
	// Burst optionally injects the cold flood.
	Burst *BurstSpec
	// SampleSubClass records per-subclass slab shares of this class in
	// Point.Extra (-1 disables). Fig. 4 uses classes 0 and 8.
	SampleSubClass int
}

// withDefaults fills unset fields.
func (s Spec) withDefaults() Spec {
	if s.Geometry.IsZero() {
		s.Geometry = kv.DefaultGeometry()
	}
	if s.Requests == 0 {
		s.Requests = 1_000_000
	}
	if s.Repeats <= 0 {
		s.Repeats = 1
	}
	if s.MetricsWindow == 0 {
		s.MetricsWindow = s.Requests / 40
		if s.MetricsWindow == 0 {
			s.MetricsWindow = 1
		}
	}
	if s.EngineWindow == 0 {
		s.EngineWindow = s.MetricsWindow / 2
		if s.EngineWindow == 0 {
			s.EngineWindow = 1
		}
	}
	if s.HitTime == 0 {
		s.HitTime = penalty.DefaultHitTime
	}
	if s.Name == "" {
		s.Name = s.Policy.Kind
	}
	return s
}

// Result carries everything a run produced.
type Result struct {
	Spec   Spec
	Series metrics.Series
	// SlabSeries shadows Series with per-class slab snapshots.
	SlabSeries metrics.Series
	Stats      cache.Stats
	// Decisions is non-nil for pama/pre-pama runs.
	Decisions *core.Decisions
	// ServiceHist is the log-histogram of GET service times.
	ServiceHist *metrics.Histogram
	// MissPenalty is the summed miss penalty of every GET miss — the
	// penalty-weighted miss cost the cost-aware baselines optimize.
	MissPenalty float64
	// BytesHoles is the final per-class internal fragmentation (slab
	// engines only; nil for gdsf); HolesBytes is its sum and Items the
	// final resident count, for normalizing holes per item.
	BytesHoles []int64
	HolesBytes int64
	Items      int
	// SlotSizes is the final slot table — under Adaptive this is the
	// learned geometry, not the configured one.
	SlotSizes []int
	Elapsed   time.Duration
}

// Run executes one experiment.
func Run(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	pol, err := spec.Policy.Build()
	if err != nil {
		return nil, err
	}
	var c engine
	if spec.Policy.Kind == "gdsf" {
		g, err := gds.New(spec.CacheBytes, false)
		if err != nil {
			return nil, err
		}
		c = gdsfEngine{g}
	} else {
		eng, err := cache.New(cache.Config{
			Geometry:   spec.Geometry,
			CacheBytes: spec.CacheBytes,
			WindowLen:  spec.EngineWindow,
			Tracker:    spec.Tracker,
			Adaptive:   spec.Adaptive,
		}, pol)
		if err != nil {
			return nil, err
		}
		c = eng
	}

	res := &Result{Spec: spec}
	res.Series.Name = spec.Name
	res.SlabSeries.Name = spec.Name
	res.ServiceHist = metrics.NewHistogram(0.0001, 6)
	start := time.Now()

	model := spec.Workload.Penalty
	var win metrics.Window
	var gets uint64
	snapshot := func() {
		p := metrics.Point{
			GetsServed: gets,
			HitRatio:   win.HitRatio(),
			AvgService: win.AvgService(),
		}
		if spec.SampleSubClass >= 0 {
			p.Extra = c.SnapshotSubSlabs(spec.SampleSubClass)
		}
		res.Series.Append(p)
		sp := p
		sp.Slabs = c.SnapshotSlabs()
		res.SlabSeries.Append(sp)
		win.Reset()
	}

	for rep := 0; rep < spec.Repeats; rep++ {
		gen, err := workload.New(spec.Workload)
		if err != nil {
			return nil, err
		}
		var stream trace.Stream = &trace.Limit{S: gen, N: spec.Requests}
		if spec.Burst != nil && rep == 0 {
			b := workload.MakeBurst(workload.BurstConfig{
				TotalBytes: int64(spec.Burst.FracOfCache * float64(spec.CacheBytes)),
				Classes:    spec.Burst.Classes,
				BaseSize:   spec.Workload.BaseSize,
				Seed:       spec.Workload.Seed,
			})
			stream = &trace.Burst{S: stream, At: spec.Burst.At, Inject: &trace.SliceStream{Reqs: b}}
		}
		for {
			r, err := stream.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return nil, err
			}
			key := kv.KeyString(r.Key)
			size := int(r.Size)
			switch r.Op {
			case kv.Get:
				pen := model.Of(kv.HashString(key), size)
				_, _, hit := c.Get(key, size, pen, nil)
				svc := spec.HitTime
				if !hit {
					svc = pen
					res.MissPenalty += pen
					// GET-miss → backend fetch → SET refill,
					// the pattern penalties are estimated from.
					if err := c.Set(key, size, pen, 0, nil); err != nil &&
						!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
						return nil, err
					}
				}
				win.Add(hit, svc)
				res.ServiceHist.Add(svc)
				gets++
				if gets%spec.MetricsWindow == 0 {
					snapshot()
				}
			case kv.Set:
				pen := model.Of(kv.HashString(key), size)
				if err := c.Set(key, size, pen, 0, nil); err != nil &&
					!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
					return nil, err
				}
			case kv.Delete:
				c.Delete(key)
			}
		}
	}
	if win.Gets > 0 {
		snapshot()
	}
	if eng, ok := c.(*cache.Cache); ok {
		// Converge any in-flight geometry transition so the final holes
		// and invariants describe the learned steady state.
		for eng.ReslabActive() {
			eng.ReslabStep(4096)
		}
		in := eng.Introspect()
		res.BytesHoles = in.BytesHoles
		res.HolesBytes = eng.HolesTotal()
		res.Items = in.Items
		res.SlotSizes = in.SlotSizes
	}
	res.Stats = c.Stats()
	if p, ok := pol.(*core.PAMA); ok {
		d := p.Decisions()
		res.Decisions = &d
	}
	res.Elapsed = time.Since(start)
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sim: post-run invariant violation: %w", err)
	}
	return res, nil
}

// RunMatrix executes specs concurrently on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns results in spec order.
// Individual failures surface as nil results plus a joined error.
func RunMatrix(specs []Spec, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(specs[i])
		}(i)
	}
	wg.Wait()
	var err error
	for i, e := range errs {
		if e != nil {
			err = errors.Join(err, fmt.Errorf("spec %d (%s): %w", i, specs[i].Name, e))
		}
	}
	return results, err
}
