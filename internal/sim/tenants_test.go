package sim

import (
	"strings"
	"testing"

	"pamakv/internal/workload"
)

// TestTenantArbitrationGate is the CI tenant-fairness gate: one arbitrated
// cache must match the combined hit rate of per-tenant static partitions
// with 20% less total memory on the skewed tenant mix, and the win must
// come from observable slab moves. Everything is deterministic (fixed
// seeds, synchronous arbiter steps), so the gate is exact, not
// statistical.
func TestTenantArbitrationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant gate runs millions of requests")
	}
	r, err := RunTenantsFigure(0.25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partitioned %.4f @ %d MiB vs arbitrated %.4f @ %d MiB, %d moves",
		r.PartitionHit, r.TotalBytes>>20, r.Arbitrated.CombinedHit, r.ArbitratedBytes>>20, r.Arbitrated.Moves)
	for _, tr := range r.Arbitrated.Tenants {
		t.Logf("  %s: hit %.4f slabs %d->%d (in %d, out %d)",
			tr.Name, tr.HitRatio(), tr.SlabsStart, tr.SlabsEnd, tr.SlabsIn, tr.SlabsOut)
	}
	if got := float64(r.ArbitratedBytes) / float64(r.TotalBytes); got > ArbitratedFrac+1e-9 {
		t.Fatalf("arbitrated cache uses %.0f%% of the partitioned memory, want <= %.0f%%", got*100, ArbitratedFrac*100)
	}
	if r.Arbitrated.CombinedHit < r.PartitionHit {
		t.Fatalf("arbitrated hit %.4f below partitioned %.4f despite equal-or-less memory",
			r.Arbitrated.CombinedHit, r.PartitionHit)
	}
	if r.Arbitrated.Moves == 0 {
		t.Fatal("arbiter never moved a slab; the comparison proves nothing")
	}
	// The design intent, not just the aggregate: the overflowing hot
	// tenant must end with more memory than its even split, funded by the
	// tenants that cannot use theirs.
	hot := r.Arbitrated.Tenants[0]
	if hot.SlabsEnd <= hot.SlabsStart {
		t.Errorf("hot tenant ended with %d slabs, started with %d — arbitration flowed the wrong way",
			hot.SlabsEnd, hot.SlabsStart)
	}
	var sb strings.Builder
	if err := RenderTenants(&sb, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hit_ratio", "arbitrated", "partitioned", "# combined:", "# move matrix"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("RenderTenants output missing %q:\n%s", want, sb.String())
		}
	}
}

// TestRunMultiStatic pins the no-arbiter path: budgets never move and the
// slab count is conserved trivially.
func TestRunMultiStatic(t *testing.T) {
	mix := TenantsMix()
	r, err := RunMulti(MultiSpec{
		Name:       "static",
		Tenants:    mix,
		CacheBytes: 48 << 20,
		Requests:   200_000,
		Policy:     PolicySpec{Kind: "pama"},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Moves != 0 {
		t.Fatalf("static run reported %d moves", r.Moves)
	}
	for _, tr := range r.Tenants {
		if tr.SlabsStart != tr.SlabsEnd {
			t.Fatalf("tenant %s budget moved without an arbiter: %d -> %d", tr.Name, tr.SlabsStart, tr.SlabsEnd)
		}
		if tr.SlabsIn != 0 || tr.SlabsOut != 0 {
			t.Fatalf("tenant %s has transfers without an arbiter", tr.Name)
		}
	}
}

// TestRunMultiReserveRespected runs a mix whose reserves nearly cover the
// cache and checks the runner's own floor assertion holds (RunMulti fails
// the run if any tenant ends below its reserve).
func TestRunMultiReserveRespected(t *testing.T) {
	small := workload.SYS()
	small.Seed = 21
	big := workload.ETC()
	big.Keys = 200_000
	big.Seed = 22
	spec := MultiSpec{
		Name: "reserve",
		Tenants: []TenantSpec{
			{Tenant: TenantsMix()[0].Tenant, Workload: big, Share: 0.9},
			{Tenant: TenantsMix()[1].Tenant, Workload: small, Share: 0.1},
		},
		CacheBytes:     16 << 20,
		Requests:       300_000,
		Policy:         PolicySpec{Kind: "pama"},
		ArbitrateEvery: 2_000,
		Seed:           9,
	}
	spec.Tenants[0].Tenant.ReservedBytes = 4 << 20
	spec.Tenants[1].Tenant.ReservedBytes = 4 << 20
	r, err := RunMulti(spec)
	if err != nil {
		t.Fatal(err)
	}
	// RunMulti already failed the run if a reserve was breached; assert
	// the pressure actually moved slabs so the floor was exercised.
	if r.Moves == 0 {
		t.Fatal("no slab pressure generated; reserve floor untested")
	}
}
