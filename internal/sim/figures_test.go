package sim

import (
	"strings"
	"testing"
)

func TestFigureByIDKnown(t *testing.T) {
	for _, id := range AllFigureIDs() {
		f, err := FigureByID(id, 0.01)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(f.Specs) == 0 || f.Render == nil || f.Title == "" {
			t.Fatalf("figure %s incomplete: %+v", id, f)
		}
	}
	if _, err := FigureByID("99", 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureScaleFloors(t *testing.T) {
	f, err := FigureByID("5", 0.000001)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Specs {
		if s.Requests < 10_000 {
			t.Fatalf("scaled request count %d below floor", s.Requests)
		}
	}
	// Zero/negative scale falls back to 1.0.
	f0, _ := FigureByID("5", 0)
	f1, _ := FigureByID("5", 1)
	if f0.Specs[0].Requests != f1.Specs[0].Requests {
		t.Fatal("scale 0 should behave as 1.0")
	}
}

func TestFigure3EndToEnd(t *testing.T) {
	f, err := FigureByID("3", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMatrix(f.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Render(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, kind := range FigurePolicies {
		if !strings.Contains(out, "scheme="+kind) {
			t.Fatalf("figure 3 output missing %s:\n%s", kind, out[:200])
		}
	}
	if !strings.Contains(out, "class14") {
		t.Fatal("slab TSV missing class columns")
	}
}

func TestFigure4EndToEnd(t *testing.T) {
	f, err := FigureByID("4", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMatrix(f.Specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Render(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pama-class0") || !strings.Contains(sb.String(), "sub4") {
		t.Fatalf("figure 4 output malformed:\n%s", sb.String()[:200])
	}
}

func TestFigure9HasBurstArm(t *testing.T) {
	f, err := FigureByID("9", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	withBurst := 0
	for _, s := range f.Specs {
		if s.Burst != nil {
			withBurst++
			if s.Burst.FracOfCache != 0.10 || len(s.Burst.Classes) != 3 {
				t.Fatalf("burst shape wrong: %+v", s.Burst)
			}
		}
	}
	if withBurst != 2 {
		t.Fatalf("want 2 burst arms (psa, pama), got %d", withBurst)
	}
}

func TestFigure10SweepsM(t *testing.T) {
	f, err := FigureByID("10", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Specs) != 8 {
		t.Fatalf("want 4 m-values x 2 workloads = 8 specs, got %d", len(f.Specs))
	}
	seen := map[int]bool{}
	for _, s := range f.Specs {
		if !s.Policy.PAMA.PenaltyAware {
			t.Fatal("fig 10 runs must stay penalty-aware")
		}
		seen[s.Policy.PAMA.M] = true
	}
	for _, m := range []int{0, 2, 4, 8} {
		if !seen[m] {
			t.Fatalf("m=%d missing from sweep", m)
		}
	}
}

func TestWriteSummarySkipsNil(t *testing.T) {
	f, _ := FigureByID("9", 0.002)
	res, err := RunMatrix(f.Specs[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	res = append(res, nil)
	var sb strings.Builder
	if err := WriteSummary(&sb, res); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 2 { // header + 1 row
		t.Fatalf("summary rows = %d:\n%s", n, sb.String())
	}
}
