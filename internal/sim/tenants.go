package sim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
	"pamakv/internal/tenant"
	"pamakv/internal/workload"
)

// This file is the multi-tenant simulator: one cache budget split across N
// tenants, each tenant driving its own engine with its own workload, with
// the tenant arbiter rebalancing the slab budget between them. The tenants
// figure (pama-bench -fig tenants) uses it to prove the ROADMAP claim: one
// arbitrated cache matches the combined hit rate of N static partitions
// with 20% less total memory on a skewed tenant mix.

// TenantSpec is one tenant's slice of a multi-tenant experiment.
type TenantSpec struct {
	// Tenant is the contract (name, reserve, weight, SLO class).
	Tenant tenant.Config
	// Workload generates this tenant's request stream.
	Workload workload.Config
	// Share is the tenant's fraction of the combined request stream;
	// shares are normalized over the spec.
	Share float64
}

// MultiSpec describes one multi-tenant experiment.
type MultiSpec struct {
	// Name labels the run.
	Name string
	// Tenants are the co-located applications.
	Tenants []TenantSpec
	// CacheBytes is the combined memory budget; each tenant starts with
	// its reserve plus a weight-proportional share of the remainder.
	CacheBytes int64
	// Requests is the combined stream length.
	Requests uint64
	// EngineWindow is each engine's value window in accesses.
	EngineWindow uint64
	// HitTime is the GET-hit service time in seconds.
	HitTime float64
	// Policy selects every tenant's allocation scheme (slab policies
	// only; gdsf has no slab budget to arbitrate).
	Policy PolicySpec
	// ArbitrateEvery runs one synchronous arbiter step every this many
	// requests; 0 disables arbitration (static partitions).
	ArbitrateEvery uint64
	// Seed drives the tenant-interleaving draw.
	Seed uint64
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	Name        string
	Gets, Hits  uint64
	MissPenalty float64
	Items       int
	// SlabsStart and SlabsEnd are the tenant's budget before and after
	// arbitration; SlabsIn/SlabsOut the arbiter transfers.
	SlabsStart, SlabsEnd int
	SlabsIn, SlabsOut    uint64
}

// MultiResult is a multi-tenant run's outcome.
type MultiResult struct {
	Spec        MultiSpec
	Tenants     []TenantResult
	Gets, Hits  uint64
	CombinedHit float64
	MissPenalty float64
	// Moves counts arbiter slab transfers; Matrix[d][r] attributes them.
	Moves  uint64
	Matrix [][]uint64
	// TotalSlabs is the combined budget, verified conserved across
	// arbitration.
	TotalSlabs int
	Elapsed    time.Duration
}

// HitRatio returns t's GET hit ratio.
func (t TenantResult) HitRatio() float64 {
	if t.Gets == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Gets)
}

// RunMulti executes one multi-tenant experiment: per-tenant engines sized
// reserve + weight-share of the remainder, a deterministic interleave of
// the tenants' streams, and (when enabled) a synchronous arbiter step every
// ArbitrateEvery requests — the simulator's stand-in for the server's
// periodic arbitration goroutine.
func RunMulti(spec MultiSpec) (*MultiResult, error) {
	if len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("sim: multi-tenant spec has no tenants")
	}
	if spec.Requests == 0 {
		spec.Requests = 1_000_000
	}
	if spec.EngineWindow == 0 {
		spec.EngineWindow = 50_000
	}
	if spec.HitTime == 0 {
		spec.HitTime = 0.0005
	}

	// Split the budget: reserves off the top, remainder by weight.
	geomt := kv.DefaultGeometry()
	slabSize := int64(geomt.SlabSize)
	var reserved int64
	var weights float64
	var shares float64
	for _, t := range spec.Tenants {
		reserved += t.Tenant.ReservedBytes
		w := t.Tenant.Weight
		if w <= 0 {
			w = 1
		}
		weights += w
		shares += t.Share
	}
	if shares <= 0 {
		return nil, fmt.Errorf("sim: tenant shares sum to %g", shares)
	}
	remainder := spec.CacheBytes - reserved
	if remainder < 0 {
		return nil, fmt.Errorf("sim: reserves %d exceed cache %d", reserved, spec.CacheBytes)
	}

	type member struct {
		eng   *cache.Cache
		gen   *workload.Generator
		model interface {
			Of(keyHash uint64, size int) float64
		}
		cum   float64 // cumulative normalized share
		res   TenantResult
		spec  TenantSpec
		start int
	}
	members := make([]*member, len(spec.Tenants))
	arbMembers := make([]tenant.Member, len(spec.Tenants))
	var cum float64
	totalSlabs := 0
	for i, t := range spec.Tenants {
		w := t.Tenant.Weight
		if w <= 0 {
			w = 1
		}
		bytes := t.Tenant.ReservedBytes + int64(float64(remainder)*w/weights)
		if bytes < slabSize {
			bytes = slabSize
		}
		pol, err := spec.Policy.Build()
		if err != nil {
			return nil, err
		}
		if pol == nil {
			return nil, fmt.Errorf("sim: policy %q cannot run multi-tenant", spec.Policy.Kind)
		}
		eng, err := cache.New(cache.Config{
			Geometry:   geomt,
			CacheBytes: bytes,
			WindowLen:  spec.EngineWindow,
			Tenant:     int32(i),
		}, pol)
		if err != nil {
			return nil, fmt.Errorf("sim: tenant %s: %w", t.Tenant.Name, err)
		}
		gen, err := workload.New(t.Workload)
		if err != nil {
			return nil, fmt.Errorf("sim: tenant %s: %w", t.Tenant.Name, err)
		}
		cum += t.Share / shares
		members[i] = &member{
			eng:   eng,
			gen:   gen,
			model: t.Workload.Penalty,
			cum:   cum,
			res:   TenantResult{Name: t.Tenant.Name, SlabsStart: eng.TotalSlabsBudget()},
			spec:  t,
			start: eng.TotalSlabsBudget(),
		}
		totalSlabs += eng.TotalSlabsBudget()
		arbMembers[i] = tenant.Member{ID: i, Cfg: t.Tenant, Engines: []*cache.Cache{eng}}
	}

	var arb *tenant.Arbiter
	if spec.ArbitrateEvery > 0 && len(members) >= 2 {
		var err error
		arb, err = tenant.NewArbiter(arbMembers)
		if err != nil {
			return nil, err
		}
	}

	res := &MultiResult{Spec: spec, TotalSlabs: totalSlabs}
	start := time.Now()
	for step := uint64(0); step < spec.Requests; step++ {
		// Deterministic tenant draw by cumulative share.
		u := float64(kv.Mix64(spec.Seed^(step*0x9e3779b97f4a7c15+1))) / float64(1<<63) / 2
		m := members[len(members)-1]
		for _, cand := range members {
			if u < cand.cum {
				m = cand
				break
			}
		}
		r, err := m.gen.Next()
		if err != nil {
			return nil, err
		}
		key := kv.KeyString(r.Key)
		size := int(r.Size)
		switch r.Op {
		case kv.Get:
			pen := m.model.Of(kv.HashString(key), size)
			_, _, hit := m.eng.Get(key, size, pen, nil)
			m.res.Gets++
			if hit {
				m.res.Hits++
			} else {
				m.res.MissPenalty += pen
				if err := m.eng.Set(key, size, pen, 0, nil); err != nil &&
					!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
					return nil, err
				}
			}
		case kv.Set:
			pen := m.model.Of(kv.HashString(key), size)
			if err := m.eng.Set(key, size, pen, 0, nil); err != nil &&
				!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
				return nil, err
			}
		case kv.Delete:
			m.eng.Delete(key)
		}
		if arb != nil && spec.ArbitrateEvery > 0 && (step+1)%spec.ArbitrateEvery == 0 {
			arb.Step()
		}
	}
	res.Elapsed = time.Since(start)

	endSlabs := 0
	for i, m := range members {
		if err := m.eng.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("sim: tenant %s: %w", m.res.Name, err)
		}
		st := m.eng.Stats()
		m.res.Items = m.eng.Items()
		m.res.SlabsEnd = m.eng.TotalSlabsBudget()
		m.res.SlabsIn = st.SlabReceipts
		m.res.SlabsOut = st.SlabDonations
		endSlabs += m.res.SlabsEnd
		res.Tenants = append(res.Tenants, m.res)
		res.Gets += m.res.Gets
		res.Hits += m.res.Hits
		res.MissPenalty += m.res.MissPenalty
		if arb != nil {
			floor := arb.ReserveSlabs(i)
			if m.res.SlabsEnd < floor {
				return nil, fmt.Errorf("sim: tenant %s ended below reserve: %d < %d slabs",
					m.res.Name, m.res.SlabsEnd, floor)
			}
		}
	}
	if endSlabs != totalSlabs {
		return nil, fmt.Errorf("sim: slab budget not conserved: started %d, ended %d", totalSlabs, endSlabs)
	}
	if res.Gets > 0 {
		res.CombinedHit = float64(res.Hits) / float64(res.Gets)
	}
	if arb != nil {
		st := arb.Stats()
		res.Moves = st.Moves
		res.Matrix = st.Matrix
	}
	return res, nil
}

// TenantsFigureResult is the tenants figure: every tenant running alone in
// a static partition of the full budget, against all tenants sharing one
// arbitrated cache at 80% of that budget.
type TenantsFigureResult struct {
	// Partitions holds one single-tenant run per tenant, each in an
	// equal static partition (the siloed-memcached-pools baseline).
	Partitions []*MultiResult
	// Arbitrated is the combined run at ArbitratedFrac of the budget.
	Arbitrated *MultiResult
	// PartitionBytes is the per-tenant partition size; TotalBytes the
	// baseline total; ArbitratedBytes the arbitrated cache's budget.
	PartitionBytes  int64
	TotalBytes      int64
	ArbitratedBytes int64
	// PartitionHit is the partitions' gets-weighted combined hit ratio.
	PartitionHit float64
}

// ArbitratedFrac is the arbitrated cache's budget relative to the
// partitioned baseline: the ROADMAP's "≥20% less total memory" claim.
const ArbitratedFrac = 0.8

// TenantsMix returns the figure's skewed tenant mix: a hot, penalty-heavy
// tenant whose working set overflows an equal partition; a small tenant
// that fits anywhere; and a cold scan tenant that no amount of memory
// helps. Equal partitions mis-provision all three — exactly the silo waste
// Memshare targets.
func TenantsMix() []TenantSpec {
	hot := workload.ETC()
	hot.Name = "hot"
	hot.Keys = 300_000
	hot.Seed = 11

	warm := workload.SYS()
	warm.Name = "warm"
	warm.Seed = 12

	cold := workload.ETC()
	cold.Name = "cold"
	cold.Keys = 2_000_000
	cold.ZipfS = 0.6
	cold.ColdFrac = 0.5
	cold.RotateEvery = 0
	cold.Seed = 13

	// Weights mirror the SLO ordering. They matter on long runs: the cold
	// scan's half-cold key stream keeps generating would-have-hit candidate
	// signal that it can never convert into retained hits, so with equal
	// weights the arbiter slowly drains the hot tenant into the scan.
	// Down-weighting the scan tenant is exactly the operator knob for that.
	return []TenantSpec{
		{Tenant: tenant.Config{Name: "hot", ReservedBytes: 4 << 20, Weight: 4, SLOClass: 0}, Workload: hot, Share: 0.6},
		{Tenant: tenant.Config{Name: "warm", ReservedBytes: 4 << 20, Weight: 2, SLOClass: 1}, Workload: warm, Share: 0.3},
		{Tenant: tenant.Config{Name: "cold", ReservedBytes: 4 << 20, Weight: 1, SLOClass: 2}, Workload: cold, Share: 0.1},
	}
}

// RunTenantsFigure executes the tenants figure at the given request scale:
// N single-tenant partition runs (in parallel) plus one arbitrated run.
func RunTenantsFigure(scale float64) (*TenantsFigureResult, error) {
	mix := TenantsMix()
	reqs := scaled(4_000_000, scale)
	total := int64(96) << 20
	partBytes := total / int64(len(mix))
	arbBytes := int64(float64(total) * ArbitratedFrac)

	out := &TenantsFigureResult{
		Partitions:      make([]*MultiResult, len(mix)),
		PartitionBytes:  partBytes,
		TotalBytes:      total,
		ArbitratedBytes: arbBytes,
	}

	var shares float64
	for _, t := range mix {
		shares += t.Share
	}
	var wg sync.WaitGroup
	errs := make([]error, len(mix)+1)
	for i, t := range mix {
		wg.Add(1)
		go func(i int, t TenantSpec) {
			defer wg.Done()
			solo := t
			solo.Share = 1
			out.Partitions[i], errs[i] = RunMulti(MultiSpec{
				Name:       "partition/" + t.Tenant.Name,
				Tenants:    []TenantSpec{solo},
				CacheBytes: partBytes,
				Requests:   uint64(float64(reqs) * t.Share / shares),
				Policy:     PolicySpec{Kind: "pama"},
				Seed:       100 + uint64(i),
			})
		}(i, t)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		out.Arbitrated, errs[len(mix)] = RunMulti(MultiSpec{
			Name:           "arbitrated",
			Tenants:        mix,
			CacheBytes:     arbBytes,
			Requests:       reqs,
			Policy:         PolicySpec{Kind: "pama"},
			ArbitrateEvery: 10_000,
			Seed:           42,
		})
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var gets, hits uint64
	for _, p := range out.Partitions {
		gets += p.Gets
		hits += p.Hits
	}
	if gets > 0 {
		out.PartitionHit = float64(hits) / float64(gets)
	}
	return out, nil
}

// RenderTenants writes the tenants figure as TSV: one row per (tenant,
// mode), then the combined comparison and the arbiter's move matrix.
func RenderTenants(w io.Writer, r *TenantsFigureResult) error {
	if _, err := fmt.Fprintln(w, "tenant\tmode\tcache_mib\tgets\thit_ratio\tmiss_penalty_s\titems\tslabs_start\tslabs_end\tslabs_in\tslabs_out"); err != nil {
		return err
	}
	row := func(t TenantResult, mode string, mib float64) error {
		_, err := fmt.Fprintf(w, "%s\t%s\t%.1f\t%d\t%.4f\t%.1f\t%d\t%d\t%d\t%d\t%d\n",
			t.Name, mode, mib, t.Gets, t.HitRatio(), t.MissPenalty, t.Items,
			t.SlabsStart, t.SlabsEnd, t.SlabsIn, t.SlabsOut)
		return err
	}
	for _, p := range r.Partitions {
		for _, t := range p.Tenants {
			if err := row(t, "partitioned", float64(r.PartitionBytes)/(1<<20)); err != nil {
				return err
			}
		}
	}
	for _, t := range r.Arbitrated.Tenants {
		if err := row(t, "arbitrated", float64(r.ArbitratedBytes)/(1<<20)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# combined: partitioned %.4f @ %d MiB vs arbitrated %.4f @ %d MiB (%.0f%% of the memory), %d slab moves\n",
		r.PartitionHit, r.TotalBytes>>20, r.Arbitrated.CombinedHit, r.ArbitratedBytes>>20,
		ArbitratedFrac*100, r.Arbitrated.Moves); err != nil {
		return err
	}
	if len(r.Arbitrated.Matrix) > 0 {
		if _, err := fmt.Fprintf(w, "# move matrix (donor -> receiver):\n"); err != nil {
			return err
		}
		for d, rowm := range r.Arbitrated.Matrix {
			if _, err := fmt.Fprintf(w, "#   %s -> %v\n", r.Arbitrated.Tenants[d].Name, rowm); err != nil {
				return err
			}
		}
	}
	return nil
}
