package sim

import (
	"fmt"
	"io"
	"strings"

	"pamakv/internal/geom"
	"pamakv/internal/kv"
	"pamakv/internal/metrics"
	"pamakv/internal/workload"
)

// The paper's experiments, scaled 1:100 by default: its 4–64 GB caches and
// 0.8–1.8 × 10⁹ request runs become 40–640 MiB and 10⁶–10⁷ requests with
// identical slab size (1 MiB) and class geometry, preserving slab-count
// ratios and footprint/cache ratios (DESIGN.md §2). The Scale factor
// multiplies request counts; cache sizes are fixed per figure.
const (
	etcRequests = 8_000_000 // paper: 8x10^8 ETC GETs
	appRequests = 6_000_000 // paper: ~9x10^8 APP GETs per pass, two passes
	// Paper cache sizes / 32: ETC 4/8/16 GB, APP 16/32/64 GB.
	etcCacheSmall = int64(128) << 20
	etcCacheMid   = int64(256) << 20
	etcCacheLarge = int64(512) << 20
	appCacheSmall = int64(512) << 20
	appCacheMid   = int64(1024) << 20
	appCacheLarge = int64(2048) << 20
)

// FigurePolicies are the four schemes of the paper's evaluation, in its
// plotting order.
var FigurePolicies = []string{"memcached", "psa", "pre-pama", "pama"}

// etcWorkload returns the scaled ETC model: the keyspace is reduced with
// the cache so footprint/cache ratios match the paper's regime.
func etcWorkload() workload.Config {
	cfg := workload.ETC()
	cfg.Keys = 256 * 1024
	return cfg
}

func appWorkload() workload.Config { return workload.APP() }

func scaled(n uint64, scale float64) uint64 {
	if scale <= 0 {
		scale = 1
	}
	v := uint64(float64(n) * scale)
	if v < 10_000 {
		v = 10_000
	}
	return v
}

// Figure is a set of runs plus instructions for rendering them.
type Figure struct {
	// ID is the paper figure number ("3", "5", ...).
	ID string
	// Title describes the figure.
	Title string
	// Specs are the runs, executed with RunMatrix.
	Specs []Spec
	// GroupSize is how many consecutive results form one sub-plot (one
	// cache size, one workload); 0 means all results together.
	GroupSize int
	// Render writes the figure's data given results aligned with Specs.
	Render func(w io.Writer, res []*Result) error
}

// Groups splits results into the figure's sub-plot groups.
func (f *Figure) Groups(res []*Result) [][]*Result {
	g := f.GroupSize
	if g <= 0 {
		g = len(res)
	}
	var out [][]*Result
	for i := 0; i < len(res); i += g {
		end := i + g
		if end > len(res) {
			end = len(res)
		}
		out = append(out, res[i:end])
	}
	return out
}

// FigureByID builds the experiment set for one paper figure at the given
// request-count scale (1.0 = the 1:100-scaled defaults above).
func FigureByID(id string, scale float64) (*Figure, error) {
	switch id {
	case "3":
		return figure3(scale), nil
	case "4":
		return figure4(scale), nil
	case "5", "6":
		return figure56(scale), nil
	case "7", "8":
		return figure78(scale), nil
	case "9":
		return figure9(scale), nil
	case "10":
		return figure10(scale), nil
	case "holes":
		return figureHoles(scale), nil
	default:
		return nil, fmt.Errorf("sim: unknown figure %q (have 3,4,5,6,7,8,9,10,holes)", id)
	}
}

// AllFigureIDs lists the figures FigureByID accepts, in paper order plus
// the repository's own ablations.
func AllFigureIDs() []string { return []string{"3", "4", "5", "6", "7", "8", "9", "10", "holes"} }

func baseSpec(wl workload.Config, cacheBytes int64, reqs uint64, kind string) Spec {
	return Spec{
		Name:           kind,
		Workload:       wl,
		CacheBytes:     cacheBytes,
		Requests:       reqs,
		MetricsWindow:  reqs / 40,
		Policy:         PolicySpec{Kind: kind},
		SampleSubClass: -1,
	}
}

func figure3(scale float64) *Figure {
	reqs := scaled(etcRequests, scale)
	f := &Figure{
		ID:    "3",
		Title: "Space allocation per class over time (ETC, mid cache), 4 schemes",
	}
	for _, kind := range FigurePolicies {
		f.Specs = append(f.Specs, baseSpec(etcWorkload(), etcCacheMid, reqs, kind))
	}
	f.Render = func(w io.Writer, res []*Result) error {
		nc := kv.DefaultGeometry().NumClasses
		for _, r := range res {
			fmt.Fprintf(w, "# Fig 3: slabs per class, scheme=%s\n", r.Spec.Name)
			if err := metrics.WriteSlabTSV(w, &r.SlabSeries, nc); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return f
}

func figure4(scale float64) *Figure {
	reqs := scaled(etcRequests, scale)
	f := &Figure{
		ID:    "4",
		Title: "Slab-equivalents per subclass inside Class 0 and Class 8 (PAMA, ETC)",
	}
	for _, class := range []int{0, 8} {
		s := baseSpec(etcWorkload(), etcCacheMid, reqs, "pama")
		s.Name = fmt.Sprintf("pama-class%d", class)
		s.SampleSubClass = class
		f.Specs = append(f.Specs, s)
	}
	f.Render = func(w io.Writer, res []*Result) error {
		for _, r := range res {
			fmt.Fprintf(w, "# Fig 4: subclass slab-equivalents, %s\n", r.Spec.Name)
			fmt.Fprintln(w, "gets\tsub0\tsub1\tsub2\tsub3\tsub4")
			for _, p := range r.Series.Points {
				row := []string{fmt.Sprintf("%d", p.GetsServed)}
				for _, v := range p.Extra {
					row = append(row, fmt.Sprintf("%.2f", v))
				}
				fmt.Fprintln(w, strings.Join(row, "\t"))
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return f
}

func figure56(scale float64) *Figure {
	reqs := scaled(etcRequests, scale)
	f := &Figure{
		ID:        "5",
		Title:     "ETC hit ratio (Fig 5) and avg service time (Fig 6) vs time, 3 cache sizes",
		GroupSize: len(FigurePolicies),
	}
	caches := []int64{etcCacheSmall, etcCacheMid, etcCacheLarge}
	for _, cb := range caches {
		for _, kind := range FigurePolicies {
			s := baseSpec(etcWorkload(), cb, reqs, kind)
			s.Name = fmt.Sprintf("%s/%dMiB", kind, cb>>20)
			f.Specs = append(f.Specs, s)
		}
	}
	f.Render = func(w io.Writer, res []*Result) error {
		return renderGrouped(w, res, len(FigurePolicies))
	}
	return f
}

func figure78(scale float64) *Figure {
	reqs := scaled(appRequests, scale)
	f := &Figure{
		ID:        "7",
		Title:     "APP hit ratio (Fig 7) and avg service time (Fig 8), trace played twice, 3 cache sizes",
		GroupSize: len(FigurePolicies),
	}
	caches := []int64{appCacheSmall, appCacheMid, appCacheLarge}
	for _, cb := range caches {
		for _, kind := range FigurePolicies {
			s := baseSpec(appWorkload(), cb, reqs, kind)
			s.Repeats = 2
			s.Name = fmt.Sprintf("%s/%dMiB", kind, cb>>20)
			f.Specs = append(f.Specs, s)
		}
	}
	f.Render = func(w io.Writer, res []*Result) error {
		return renderGrouped(w, res, len(FigurePolicies))
	}
	return f
}

func figure9(scale float64) *Figure {
	reqs := scaled(etcRequests, scale)
	f := &Figure{
		ID:    "9",
		Title: "Cold-burst impact on hit ratio and service time (ETC, small cache), PSA vs PAMA",
	}
	burst := &BurstSpec{
		// Paper: burst at 0.35x10^8 of 8x10^8 GETs -> same relative
		// position; items total 10% of cache across 3 classes.
		At:          reqs * 35 / 800,
		FracOfCache: 0.10,
		Classes:     []int{3, 4, 5},
	}
	for _, kind := range []string{"psa", "pama"} {
		s := baseSpec(etcWorkload(), etcCacheSmall, reqs, kind)
		s.Name = kind + "/no-impact"
		f.Specs = append(f.Specs, s)
		sb := baseSpec(etcWorkload(), etcCacheSmall, reqs, kind)
		sb.Name = kind + "/impact"
		sb.Burst = burst
		f.Specs = append(f.Specs, sb)
	}
	f.Render = func(w io.Writer, res []*Result) error {
		return renderGrouped(w, res, len(res))
	}
	return f
}

func figure10(scale float64) *Figure {
	f := &Figure{
		ID:        "10",
		Title:     "Sensitivity to reference-segment count m (ETC small cache, APP small cache)",
		GroupSize: 4,
	}
	ms := []int{0, 2, 4, 8}
	etcReqs := scaled(etcRequests, scale)
	for _, m := range ms {
		s := baseSpec(etcWorkload(), etcCacheSmall, etcReqs, "pama")
		s.Name = fmt.Sprintf("etc/m=%d", m)
		s.Policy.PAMA.M = m
		s.Policy.PAMA.PenaltyAware = true
		f.Specs = append(f.Specs, s)
	}
	appReqs := scaled(appRequests, scale)
	for _, m := range ms {
		s := baseSpec(appWorkload(), appCacheSmall, appReqs, "pama")
		s.Name = fmt.Sprintf("app/m=%d", m)
		s.Policy.PAMA.M = m
		s.Policy.PAMA.PenaltyAware = true
		f.Specs = append(f.Specs, s)
	}
	f.Render = func(w io.Writer, res []*Result) error {
		return renderGrouped(w, res, len(ms))
	}
	return f
}

// HolesAdaptiveConfig is the learner tuning the memory-holes ablation (and
// its CI gate) uses: proposal cadence short enough to converge within a
// scaled run, default gain hysteresis.
func HolesAdaptiveConfig() *geom.Config {
	return &geom.Config{MinSamples: 8192, Every: 16384, StepItems: 128}
}

// figureHoles is the repository's memory-holes ablation: the same
// mixed-size trace through identical caches, one on the static power-of-two
// geometry and one with the online boundary learner re-slabbing live. The
// rendered table is results/fig_holes.tsv.
func figureHoles(scale float64) *Figure {
	reqs := scaled(2_000_000, scale)
	wl := workload.MixedSize()
	cacheBytes := int64(32) << 20
	f := &Figure{
		ID:    "holes",
		Title: "Memory holes: power-of-two vs learned slab geometry (MIXED workload)",
	}
	s := baseSpec(wl, cacheBytes, reqs, "memcached")
	s.Name = "po2"
	f.Specs = append(f.Specs, s)
	a := baseSpec(wl, cacheBytes, reqs, "memcached")
	a.Name = "learned"
	a.Adaptive = HolesAdaptiveConfig()
	f.Specs = append(f.Specs, a)
	// The ablation under the paper's policy, not just static geometry:
	// PAMA's subclass stacks fragment slabs differently, so the holes
	// accounting is reported for it too (ROADMAP follow-on to PR 7).
	p := baseSpec(wl, cacheBytes, reqs, "pama")
	f.Specs = append(f.Specs, p)
	f.Render = RenderHoles
	return f
}

// RenderHoles writes the memory-holes comparison: one summary row per run
// (holes in absolute bytes and per resident item, alongside hit ratio so
// the fragmentation win is shown at equal service quality), then each
// run's final slot table with per-class holes.
func RenderHoles(w io.Writer, res []*Result) error {
	fmt.Fprintln(w, "name\tmean_hit\titems\tholes_bytes\tholes_per_item\treslabs\treslab_moved\tmiss_penalty_s")
	for _, r := range res {
		if r == nil {
			continue
		}
		perItem := 0.0
		if r.Items > 0 {
			perItem = float64(r.HolesBytes) / float64(r.Items)
		}
		if _, err := fmt.Fprintf(w, "%s\t%.4f\t%d\t%d\t%.1f\t%d\t%d\t%.1f\n",
			r.Spec.Name, r.Series.MeanHitRatio(), r.Items, r.HolesBytes, perItem,
			r.Stats.Reslabs, r.Stats.ReslabMoved, r.MissPenalty); err != nil {
			return err
		}
	}
	for _, r := range res {
		if r == nil {
			continue
		}
		fmt.Fprintf(w, "\n# final geometry: %s\nclass\tslot_bytes\tholes_bytes\n", r.Spec.Name)
		for cl, slot := range r.SlotSizes {
			holes := int64(0)
			if cl < len(r.BytesHoles) {
				holes = r.BytesHoles[cl]
			}
			fmt.Fprintf(w, "%d\t%d\t%d\n", cl, slot, holes)
		}
	}
	return nil
}

// renderGrouped prints results in groups of groupSize series side by side,
// followed by a summary block.
func renderGrouped(w io.Writer, res []*Result, groupSize int) error {
	for i := 0; i < len(res); i += groupSize {
		end := i + groupSize
		if end > len(res) {
			end = len(res)
		}
		group := make([]*metrics.Series, 0, groupSize)
		for _, r := range res[i:end] {
			if r != nil {
				group = append(group, &r.Series)
			}
		}
		if err := metrics.WriteTSV(w, group); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return WriteSummary(w, res)
}

// WriteSummary prints one line per run: mean/tail hit ratio and service
// time — the numbers EXPERIMENTS.md tabulates against the paper.
func WriteSummary(w io.Writer, res []*Result) error {
	fmt.Fprintln(w, "# summary: name\tmeanHit\tmeanSvc\ttailSvc\tp99Svc\tevictions\tmigrations")
	for _, r := range res {
		if r == nil {
			continue
		}
		p99 := 0.0
		if r.ServiceHist != nil {
			p99 = r.ServiceHist.Quantile(0.99)
		}
		if _, err := fmt.Fprintf(w, "%s\t%.4f\t%.5f\t%.5f\t%.4f\t%d\t%d\n",
			r.Spec.Name, r.Series.MeanHitRatio(), r.Series.MeanAvgService(),
			r.Series.TailMeanAvgService(0.25), p99, r.Stats.Evictions, r.Stats.SlabMigrations); err != nil {
			return err
		}
	}
	return nil
}
