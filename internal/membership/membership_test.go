package membership

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"pamakv/internal/cluster"
	"pamakv/internal/overload"
	"pamakv/internal/proto"
)

// fakeNode is a minimal in-process peer speaking just enough of the text
// protocol for membership tests: storage verbs, version, and the
// membership control keys (answered as a fixed refusal or acceptance).
type fakeNode struct {
	ln net.Listener

	mu   sync.Mutex
	data map[string][]byte
	// applies records every __pamakv.m.apply body received.
	applies [][]byte
	// applyReply, when set, overrides the STORED answer to view pushes
	// (a node refusing a conflicting view replies SERVER_ERROR).
	applyReply string
	// storeReply, when set, overrides the answer to data-key set/add —
	// a target shedding handoff traffic under overload replies
	// SERVER_ERROR without storing.
	storeReply string
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &fakeNode{ln: ln, data: map[string][]byte{}}
	go n.serve()
	t.Cleanup(func() { ln.Close() })
	return n
}

func (n *fakeNode) addr() string { return n.ln.Addr().String() }

func (n *fakeNode) get(key string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.data[key]
	return v, ok
}

func (n *fakeNode) appliesSeen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.applies)
}

func (n *fakeNode) lastApply() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.applies) == 0 {
		return nil
	}
	return n.applies[len(n.applies)-1]
}

func (n *fakeNode) serve() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		go n.handle(conn)
	}
}

func (n *fakeNode) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		cmd, err := proto.ReadCommand(r)
		if err != nil {
			return
		}
		var out []byte
		switch cmd.Name {
		case "version":
			out = proto.AppendLine(out, "VERSION test")
		case "set", "add":
			n.mu.Lock()
			if cmd.Keys[0] == KeyApply {
				n.applies = append(n.applies, append([]byte(nil), cmd.Data...))
				reply := n.applyReply
				n.mu.Unlock()
				if reply == "" {
					reply = "STORED"
				}
				out = proto.AppendLine(out, reply)
				break
			}
			if n.storeReply != "" {
				reply := n.storeReply
				n.mu.Unlock()
				out = proto.AppendLine(out, reply)
				break
			}
			if _, exists := n.data[cmd.Keys[0]]; exists && cmd.Name == "add" {
				n.mu.Unlock()
				out = proto.AppendLine(out, "NOT_STORED")
				break
			}
			n.data[cmd.Keys[0]] = append([]byte(nil), cmd.Data...)
			n.mu.Unlock()
			out = proto.AppendLine(out, "STORED")
		case "get", "gets":
			n.mu.Lock()
			for _, k := range cmd.Keys {
				if v, ok := n.data[k]; ok {
					out = proto.AppendValue(out, k, 0, v)
				}
			}
			n.mu.Unlock()
			out = proto.AppendEnd(out)
		case "delete":
			n.mu.Lock()
			delete(n.data, cmd.Keys[0])
			n.mu.Unlock()
			out = proto.AppendLine(out, "DELETED")
		default:
			out = proto.AppendLine(out, "ERROR")
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// newManager builds a Manager over a fresh Peers with probing disabled
// (tests drive probeOnce directly for determinism).
func newManager(t *testing.T, self string, members []string, cfg Config) (*Manager, *cluster.Peers) {
	t.Helper()
	p, err := cluster.New(cluster.Config{Self: self, Members: members})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	cfg.Self = self
	cfg.Peers = p
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m, p
}

func TestViewEncodeParseRoundTrip(t *testing.T) {
	body := EncodeView(42, []string{"a:1", "b:2"})
	epoch, members, err := ParseView(body)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 || !reflect.DeepEqual(members, []string{"a:1", "b:2"}) {
		t.Fatalf("round trip = (%d, %v)", epoch, members)
	}
	// Parsing normalizes: dedupe, sort, trim.
	_, members, err = ParseView([]byte("7 b:2, a:1 ,b:2"))
	if err != nil || !reflect.DeepEqual(members, []string{"a:1", "b:2"}) {
		t.Fatalf("normalize = (%v, %v)", members, err)
	}
	for _, bad := range []string{"", "noepoch", "x a:1", "9999999999999999999999 a:1"} {
		if _, _, err := ParseView([]byte(bad)); err == nil {
			t.Errorf("ParseView(%q) accepted", bad)
		}
	}
}

func TestIsControlKey(t *testing.T) {
	for _, k := range []string{KeyApply, KeyJoin, KeyView, "__pamakv.m.future"} {
		if !IsControlKey(k) {
			t.Errorf("IsControlKey(%q) = false", k)
		}
	}
	for _, k := range []string{"user:k", "__pamakv", "pamakv.m.apply", ""} {
		if IsControlKey(k) {
			t.Errorf("IsControlKey(%q) = true", k)
		}
	}
}

// TestApplyEpochStateMachine exercises the view versioning rules,
// including the ISSUE's explicit satellite: an epoch going backwards
// must be refused (stale routing pushes are detectable, not silently
// regressive).
func TestApplyEpochStateMachine(t *testing.T) {
	self := "127.0.0.1:7101"
	other := "127.0.0.1:7102"
	third := "127.0.0.1:7103"
	m, p := newManager(t, self, []string{self, other}, Config{HandoffRate: -1})

	if e := m.Epoch(); e != 1 {
		t.Fatalf("seed epoch = %d, want 1", e)
	}
	// A newer epoch applies and reroutes.
	if err := m.Apply(5, []string{self, other, third}, "test"); err != nil {
		t.Fatal(err)
	}
	if e, members := m.View(); e != 5 || len(members) != 3 {
		t.Fatalf("View = (%d, %v)", e, members)
	}
	if got := p.Members(); len(got) != 3 {
		t.Fatalf("Peers not rerouted: %v", got)
	}

	// Backwards epoch: refused, view and routing untouched.
	if err := m.Apply(4, []string{self, other}, "test"); err == nil {
		t.Fatal("backwards epoch accepted")
	}
	if e, _ := m.View(); e != 5 {
		t.Fatalf("backwards epoch moved the view to %d", e)
	}
	if got := p.Members(); len(got) != 3 {
		t.Fatalf("backwards epoch rerouted Peers: %v", got)
	}

	// Equal epoch, identical list: idempotent echo, no error.
	if err := m.Apply(5, []string{third, other, self}, "test"); err != nil {
		t.Fatalf("idempotent echo refused: %v", err)
	}

	// Equal epoch, different list: a concurrent-proposal tie, resolved
	// deterministically. A view encoding larger than the current one
	// loses and is refused...
	loser := []string{self, other, "127.0.0.1:9999"}
	if err := m.Apply(5, loser, "test"); err == nil {
		t.Fatal("tie-losing equal-epoch view accepted")
	}
	if _, members := m.View(); len(members) != 3 || members[2] != third {
		t.Fatalf("losing view moved the membership: %v", members)
	}
	// ...while a view encoding smaller wins and is adopted at the same
	// epoch — the convergence rule for concurrent proposals.
	winner := []string{self, other}
	if err := m.Apply(5, winner, "test"); err != nil {
		t.Fatalf("tie-winning equal-epoch view refused: %v", err)
	}
	if e, members := m.View(); e != 5 || len(members) != 2 {
		t.Fatalf("winning view not adopted: (%d, %v)", e, members)
	}
	if got := p.Members(); len(got) != 2 {
		t.Fatalf("winning view did not reroute Peers: %v", got)
	}

	// Empty view: refused outright.
	if err := m.Apply(9, nil, "test"); err == nil {
		t.Fatal("empty member list accepted")
	}

	st := m.Stats()
	if st.Refusals != 2 {
		t.Errorf("refusals = %d, want 2 (backwards + losing conflict)", st.Refusals)
	}
	if st.Applies != 2 {
		t.Errorf("applies = %d, want 2 (newer epoch + tie-break adoption)", st.Applies)
	}
}

// TestJoinRemoveDrain covers the proposal paths, including the live
// broadcast to a real (fake) peer and the drain-enters-proxy-mode rule.
func TestJoinRemoveDrain(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7111"
	m, p := newManager(t, self, []string{self, peer.addr()}, Config{HandoffRate: -1})

	joiner := "127.0.0.1:7112"
	if err := m.Join(joiner); err != nil {
		t.Fatal(err)
	}
	if e, members := m.View(); e != 2 || len(members) != 3 {
		t.Fatalf("post-join View = (%d, %v)", e, members)
	}
	// The existing peer heard the broadcast. (The joiner is not
	// listening; that push fails best-effort, which is fine.)
	if peer.appliesSeen() == 0 {
		t.Fatal("peer never received the join broadcast")
	}
	// Idempotent: joining an existing member changes nothing.
	if err := m.Join(joiner); err != nil {
		t.Fatal(err)
	}
	if e := m.Epoch(); e != 2 {
		t.Fatalf("idempotent join bumped the epoch to %d", e)
	}

	if err := m.Remove("127.0.0.1:9999"); err == nil {
		t.Fatal("removing a non-member succeeded")
	}
	if err := m.Remove(joiner); err != nil {
		t.Fatal(err)
	}
	if e, members := m.View(); e != 3 || len(members) != 2 {
		t.Fatalf("post-remove View = (%d, %v)", e, members)
	}

	// Drain: self leaves the view, the node survives in proxy mode.
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if !st.Draining {
		t.Fatal("post-drain Stats not draining")
	}
	if _, members := m.View(); len(members) != 1 || members[0] != peer.addr() {
		t.Fatalf("post-drain view = %v", members)
	}
	for _, k := range []string{"a", "b", "c"} {
		if p.IsOwner(k) {
			t.Fatalf("draining node still owns %q", k)
		}
	}
	// The last member cannot be removed: the survivor refuses.
	m2, _ := newManager(t, "127.0.0.1:7113", []string{"127.0.0.1:7113"}, Config{HandoffRate: -1})
	if err := m2.Drain(); err == nil {
		t.Fatal("last member drained itself")
	}
}

// TestProbeHysteresisAndEviction drives probeOnce with an injected probe:
// consecutive failures escalate alive → suspect → evicted, one success
// fully resets, and the eviction actually reroutes the ring.
func TestProbeHysteresisAndEviction(t *testing.T) {
	self := "127.0.0.1:7121"
	sick := "127.0.0.1:7122"
	var failing sync.Map // addr -> bool
	probe := func(addr string) error {
		if v, ok := failing.Load(addr); ok && v.(bool) {
			return errors.New("probe refused")
		}
		return nil
	}
	m, p := newManager(t, self, []string{self, sick}, Config{
		SuspectAfter: 2, EvictAfter: 4, EvictCooldown: time.Millisecond,
		Probe: probe, HandoffRate: -1,
	})

	memberState := func(addr string) (string, int) {
		for _, ms := range m.Stats().Members {
			if ms.Addr == addr {
				return ms.State, ms.ProbeFails
			}
		}
		return "", 0
	}

	failing.Store(sick, true)
	m.probeOnce()
	if s, f := memberState(sick); s != StateAlive || f != 1 {
		t.Fatalf("after 1 failure: %s/%d", s, f)
	}
	m.probeOnce()
	if s, _ := memberState(sick); s != StateSuspect {
		t.Fatalf("after SuspectAfter failures: %s, want suspect", s)
	}
	// Hysteresis: one good probe fully recovers.
	failing.Store(sick, false)
	m.probeOnce()
	if s, f := memberState(sick); s != StateAlive || f != 0 {
		t.Fatalf("after recovery: %s/%d, want alive/0", s, f)
	}
	// Fail through to eviction.
	failing.Store(sick, true)
	for i := 0; i < 4; i++ {
		m.probeOnce()
	}
	if m.IsMember(sick) {
		t.Fatal("member not evicted after EvictAfter failures")
	}
	if got := p.Members(); len(got) != 1 || got[0] != self {
		t.Fatalf("ring not rerouted after eviction: %v", got)
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Suspects < 2 || st.ProbeFailures < 6 {
		t.Errorf("stats %+v", st)
	}
}

// TestEvictCooldownGatesStorm: a partition that kills probes to several
// peers at once must evict them one cooldown apart, not collapse the
// ring in one probe round.
func TestEvictCooldownGatesStorm(t *testing.T) {
	self := "127.0.0.1:7131"
	peers := []string{"127.0.0.1:7132", "127.0.0.1:7133", "127.0.0.1:7134"}
	m, _ := newManager(t, self, append([]string{self}, peers...), Config{
		SuspectAfter: 1, EvictAfter: 2, EvictCooldown: time.Hour,
		Probe:       func(string) error { return errors.New("partitioned") },
		HandoffRate: -1,
	})
	for i := 0; i < 10; i++ {
		m.probeOnce()
	}
	if ev := m.Stats().Evictions; ev != 1 {
		t.Fatalf("storm evicted %d members inside one cooldown, want 1", ev)
	}
	if _, members := m.View(); len(members) != 3 {
		t.Fatalf("view after gated storm = %v, want 3 members", members)
	}
}

// fakeSource is an in-memory Source for handoff tests.
type fakeSource struct {
	mu   sync.Mutex
	data map[string]fakeItem
}

type fakeItem struct {
	val []byte
	pen float64
}

func newFakeSource() *fakeSource { return &fakeSource{data: map[string]fakeItem{}} }

func (s *fakeSource) set(key string, val []byte, pen float64) {
	s.mu.Lock()
	s.data[key] = fakeItem{val: val, pen: pen}
	s.mu.Unlock()
}

func (s *fakeSource) has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[key]
	return ok
}

func (s *fakeSource) ScanKeys(fn func(key string, pen float64, size int, expireAt int64) bool) {
	s.mu.Lock()
	snap := make(map[string]fakeItem, len(s.data))
	for k, it := range s.data {
		snap[k] = it
	}
	s.mu.Unlock()
	for k, it := range snap {
		if !fn(k, it.pen, len(it.val), 0) {
			return
		}
	}
}

func (s *fakeSource) Get(key string, _ int, _ float64, buf []byte) ([]byte, uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.data[key]
	if !ok {
		return nil, 0, false
	}
	return append(buf, it.val...), 0, true
}

func (s *fakeSource) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[key]
	delete(s.data, key)
	return ok
}

func TestPlanPenaltyOrdering(t *testing.T) {
	src := newFakeSource()
	src.set("cheap", []byte("v"), 0.001)
	src.set("mid-b", []byte("v"), 0.5)
	src.set("mid-a", []byte("v"), 0.5)
	src.set("dear", []byte("v"), 5.0)
	src.set("stays", []byte("v"), 9.0)

	plan := Plan(src, func(key string) (string, bool) {
		return "new-owner", key != "stays"
	})
	got := make([]string, len(plan))
	for i, hk := range plan {
		got[i] = hk.Key
	}
	want := []string{"dear", "mid-a", "mid-b", "cheap"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plan order = %v, want %v (pen desc, key asc ties)", got, want)
	}
}

// TestHandoffStreamsWarmAndYieldsAuthority runs a real warm handoff
// against a live fake peer: moved keys land at the new owner via "add",
// the sender drops its copy either way (STORED or NOT_STORED), and keys
// still owned locally stay put.
func TestHandoffStreamsWarmAndYieldsAuthority(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7141"
	src := newFakeSource()
	m, p := newManager(t, self, []string{self}, Config{})
	m.BindSource(src)

	// Seed residents, then bring the peer in: its arc's keys must move.
	var moved, kept []string
	for i := 0; i < 64; i++ {
		src.set(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("val-%02d", i)), float64(i))
	}
	// The peer already holds one key that will route to it — the handoff
	// "add" must lose to it (post-cutover data is fresher by definition).
	if err := m.Apply(2, []string{self, peer.addr()}, "test"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%02d", i)
		if p.Owner(k) == peer.addr() {
			moved = append(moved, k)
		} else {
			kept = append(kept, k)
		}
	}
	if len(moved) == 0 || len(kept) == 0 {
		t.Fatalf("degenerate split: %d moved, %d kept", len(moved), len(kept))
	}

	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Handoff.KeysSent < uint64(len(moved)) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := m.Stats().Handoff
	if st.KeysSent != uint64(len(moved)) || st.Errors != 0 {
		t.Fatalf("handoff stats %+v, want %d keys sent cleanly", st, len(moved))
	}
	for _, k := range moved {
		if v, ok := peer.get(k); !ok || string(v) != "val-"+k[1:] {
			t.Fatalf("moved key %q at new owner = (%q, %v)", k, v, ok)
		}
		if src.has(k) {
			t.Fatalf("moved key %q still resident at old owner", k)
		}
	}
	for _, k := range kept {
		if !src.has(k) {
			t.Fatalf("kept key %q vanished from the old owner", k)
		}
	}
}

// TestHandoffAddLosesToFresherValue: a key the new owner wrote after
// cutover must survive the handoff stream (add → NOT_STORED), and the
// sender still retires its stale copy.
func TestHandoffAddLosesToFresherValue(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7143"
	src := newFakeSource()
	m, p := newManager(t, self, []string{self}, Config{})
	m.BindSource(src)

	// Find keys that will route to the peer under the 2-member view, and
	// pre-write one at the peer (simulating a post-cutover write).
	probe := cluster.NewRing([]string{self, peer.addr()}, cluster.DefaultVNodes)
	var fresh string
	for i := 0; fresh == "" && i < 1000; i++ {
		k := fmt.Sprintf("f%03d", i)
		if probe.Owner(k) == peer.addr() {
			fresh = k
		}
	}
	if fresh == "" {
		t.Fatal("no key routed to the peer")
	}
	src.set(fresh, []byte("stale-old-owner-copy"), 1.0)
	peer.mu.Lock()
	peer.data[fresh] = []byte("fresh-post-cutover-write")
	peer.mu.Unlock()

	if err := m.Apply(2, []string{self, peer.addr()}, "test"); err != nil {
		t.Fatal(err)
	}
	if p.Owner(fresh) != peer.addr() {
		t.Fatalf("probe ring and Peers disagree on %q", fresh)
	}
	deadline := time.Now().Add(5 * time.Second)
	for src.has(fresh) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if v, _ := peer.get(fresh); string(v) != "fresh-post-cutover-write" {
		t.Fatalf("handoff clobbered a post-cutover write: %q", v)
	}
	if src.has(fresh) {
		t.Fatal("sender kept its stale copy after NOT_STORED")
	}
}

// TestHandoffPausesAtCriticalAndAborts: under critical local pressure
// the stream parks instead of competing for the engine, and a newer
// view aborts it.
func TestHandoffPausesAtCriticalAndAborts(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7145"
	src := newFakeSource()
	m, _ := newManager(t, self, []string{self}, Config{
		Tier: func() int { return overload.TierCritical },
	})
	m.BindSource(src)
	for i := 0; i < 32; i++ {
		src.set(fmt.Sprintf("p%02d", i), []byte("v"), 1.0)
	}
	if err := m.Apply(2, []string{self, peer.addr()}, "test"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if sent := m.Stats().Handoff.KeysSent; sent != 0 {
		t.Fatalf("handoff streamed %d keys at TierCritical, want 0", sent)
	}
	// A newer view supersedes the parked run.
	if err := m.Apply(3, []string{self, peer.addr(), "127.0.0.1:7146"}, "test"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for m.Stats().Handoff.Aborts == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m.Stats().Handoff.Aborts == 0 {
		t.Fatal("superseded handoff never aborted")
	}
}

// TestConcurrentEqualEpochProposalsConverge: two nodes proposing
// different views at the same epoch (both auto-evicting, say) must end up
// on one view once their pushes cross — the deterministic tie-break, not
// a permanent split waiting for an unrelated epoch bump.
func TestConcurrentEqualEpochProposalsConverge(t *testing.T) {
	base := []string{"127.0.0.1:7161", "127.0.0.1:7162"}
	m1, _ := newManager(t, base[0], base, Config{HandoffRate: -1})
	m2, _ := newManager(t, base[1], base, Config{HandoffRate: -1})

	vA := append(append([]string(nil), base...), "127.0.0.1:7163")
	vB := append(append([]string(nil), base...), "127.0.0.1:7164")
	if err := m1.Apply(2, vA, "local proposal"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Apply(2, vB, "local proposal"); err != nil {
		t.Fatal(err)
	}

	// The cross pushes land: exactly one side adopts, the other refuses.
	errA := m2.Apply(2, vA, "push from m1")
	errB := m1.Apply(2, vB, "push from m2")
	if (errA == nil) == (errB == nil) {
		t.Fatalf("tie-break not decisive: push vA → %v, push vB → %v", errA, errB)
	}
	e1, v1 := m1.View()
	e2, v2 := m2.View()
	if e1 != e2 || !reflect.DeepEqual(v1, v2) {
		t.Fatalf("views diverged: (%d, %v) vs (%d, %v)", e1, v1, e2, v2)
	}
	// A re-delivered echo of the winning view is now an idempotent no-op
	// on both sides.
	if err := m1.Apply(2, v1, "echo"); err != nil {
		t.Fatalf("winner echo refused by m1: %v", err)
	}
	if err := m2.Apply(2, v1, "echo"); err != nil {
		t.Fatalf("winner echo refused by m2: %v", err)
	}
}

// TestBroadcastLoserAdoptsWinnerView drives the live convergence path: a
// proposer whose push is refused pulls the refusing peer's view, and the
// tie-break adopts it when it wins.
func TestBroadcastLoserAdoptsWinnerView(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7165"
	m, _ := newManager(t, self, []string{self, peer.addr()}, Config{HandoffRate: -1})

	// The peer already committed a conflicting epoch-2 view whose third
	// member ("127.0.0.1:1") sorts — and therefore encodes — ahead of
	// anything our proposal can contain, so the peer's view wins the tie.
	winnerMembers := normalize([]string{self, peer.addr(), "127.0.0.1:1"})
	winnerBody := EncodeView(2, winnerMembers)
	peer.mu.Lock()
	peer.applyReply = "SERVER_ERROR membership: conflicting view at epoch 2 loses tie-break"
	peer.data[KeyView] = winnerBody
	peer.mu.Unlock()

	// Our join proposes epoch 2 with a different third member; the
	// broadcast is refused and the winner's view is pulled and adopted.
	if err := m.Join("127.0.0.1:7166"); err != nil {
		t.Fatal(err)
	}
	e, members := m.View()
	if e != 2 || !reflect.DeepEqual(members, winnerMembers) {
		t.Fatalf("loser did not adopt the winner: (%d, %v), want (2, %v)", e, members, winnerMembers)
	}
}

// TestIdempotentJoinResendsView: a joiner that is already in the ring but
// never learned it (its admission broadcast was lost) retries the join;
// the idempotent path must re-send the current view instead of silently
// doing nothing.
func TestIdempotentJoinResendsView(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7171"
	m, _ := newManager(t, self, []string{self, peer.addr()}, Config{HandoffRate: -1})

	if err := m.Join(peer.addr()); err != nil {
		t.Fatal(err)
	}
	if e := m.Epoch(); e != 1 {
		t.Fatalf("idempotent join bumped the epoch to %d", e)
	}
	if peer.appliesSeen() == 0 {
		t.Fatal("idempotent join did not re-send the view to the joiner")
	}
	epoch, members, err := ParseView(peer.lastApply())
	if err != nil {
		t.Fatal(err)
	}
	wantE, wantM := m.View()
	if epoch != wantE || !reflect.DeepEqual(members, wantM) {
		t.Fatalf("re-sent view = (%d, %v), want (%d, %v)", epoch, members, wantE, wantM)
	}
}

// TestHandoffKeepsCopyWhenTargetRefuses: a target that answers the "add"
// with anything but STORED/NOT_STORED (shedding under overload, refusing)
// never became authoritative, so the sender must keep its local copy and
// count errors — not drop the value cold.
func TestHandoffKeepsCopyWhenTargetRefuses(t *testing.T) {
	peer := newFakeNode(t)
	peer.mu.Lock()
	peer.storeReply = "SERVER_ERROR busy (shed)"
	peer.mu.Unlock()
	self := "127.0.0.1:7173"
	src := newFakeSource()
	m, p := newManager(t, self, []string{self}, Config{})
	m.BindSource(src)

	for i := 0; i < 64; i++ {
		src.set(fmt.Sprintf("r%02d", i), []byte("v"), float64(i))
	}
	if err := m.Apply(2, []string{self, peer.addr()}, "test"); err != nil {
		t.Fatal(err)
	}
	var moved []string
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("r%02d", i)
		if p.Owner(k) == peer.addr() {
			moved = append(moved, k)
		}
	}
	if len(moved) == 0 {
		t.Fatal("degenerate split: nothing moved")
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Handoff.Errors < uint64(len(moved)) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := m.Stats().Handoff
	if st.Errors != uint64(len(moved)) || st.KeysSent != 0 {
		t.Fatalf("handoff stats %+v, want %d errors and 0 keys sent", st, len(moved))
	}
	for _, k := range moved {
		if !src.has(k) {
			t.Fatalf("key %q dropped cold after a refused add", k)
		}
		if _, ok := peer.get(k); ok {
			t.Fatalf("refusing peer somehow stored %q", k)
		}
	}
}

// TestAuthorizeSecret covers the shared-secret gate on mutating control
// bodies and its composition with wrapAuth.
func TestAuthorizeSecret(t *testing.T) {
	self := "127.0.0.1:7175"
	sec, _ := newManager(t, self, []string{self}, Config{HandoffRate: -1, Secret: "hunter2"})
	open, _ := newManager(t, "127.0.0.1:7176", []string{"127.0.0.1:7176"}, Config{HandoffRate: -1})

	payload := []byte("5 a:1,b:2")
	got, err := sec.Authorize(sec.wrapAuth(payload))
	if err != nil || string(got) != string(payload) {
		t.Fatalf("Authorize(wrapAuth(x)) = (%q, %v)", got, err)
	}
	for _, bad := range [][]byte{[]byte("5 a:1,b:2"), []byte("wrong 5 a:1,b:2"), []byte("hunter2"), nil} {
		if _, err := sec.Authorize(bad); err == nil {
			t.Errorf("Authorize(%q) accepted without a valid token", bad)
		}
	}
	// No secret configured: bodies pass unchanged, wrapAuth is identity.
	got, err = open.Authorize(payload)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("open Authorize = (%q, %v)", got, err)
	}
	if string(open.wrapAuth(payload)) != string(payload) {
		t.Fatal("open wrapAuth is not the identity")
	}
}

// TestBroadcastCarriesSecret: a secreted manager's view pushes must be
// acceptable to an equally-secreted receiver — the token rides first.
func TestBroadcastCarriesSecret(t *testing.T) {
	peer := newFakeNode(t)
	self := "127.0.0.1:7177"
	m, _ := newManager(t, self, []string{self, peer.addr()}, Config{HandoffRate: -1, Secret: "hunter2"})
	if err := m.Join("127.0.0.1:7178"); err != nil {
		t.Fatal(err)
	}
	if peer.appliesSeen() == 0 {
		t.Fatal("peer never received the broadcast")
	}
	body, err := m.Authorize(peer.lastApply())
	if err != nil {
		t.Fatalf("broadcast body failed Authorize: %v", err)
	}
	if epoch, _, err := ParseView(body); err != nil || epoch != 2 {
		t.Fatalf("ParseView(authorized body) = (%d, %v)", epoch, err)
	}
}

// TestControlKeyRoundTripAgainstRealManager: the joiner-side JoinCluster
// handshake against a seed that is just a fakeNode cannot work (the fake
// never admits), so verify the timeout path is clean and bounded.
func TestJoinClusterTimesOutCleanly(t *testing.T) {
	self := "127.0.0.1:7151"
	m, _ := newManager(t, self, []string{self}, Config{HandoffRate: -1})
	start := time.Now()
	err := m.JoinCluster("127.0.0.1:1", 600*time.Millisecond)
	if err == nil {
		t.Fatal("join via a dead seed succeeded")
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("join timeout took %v", e)
	}
}
