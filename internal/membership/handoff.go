// Warm handoff: when a view change moves a key's arc to another owner,
// the old owner streams its resident copy over the existing peer protocol
// instead of letting the new owner's cache go cold. Keys move highest miss
// penalty first — the PAMA ordering: a 5s-recompute key that cold-misses
// costs four orders of magnitude more than a 1ms one, so it is the one
// whose warmth is worth the wire time. The stream is rate-limited,
// abortable (a newer view supersedes it), and yields under local overload
// pressure.
//
// Correctness across the epoch boundary: the routing table flips *before*
// the stream starts, so every write acked after cutover lands at (or is
// forwarded to) the new owner. Streamed values use "add", which never
// clobbers an existing entry — a key the new owner already holds (written
// post-cutover, or filled by a read-through miss) keeps its fresher value
// and the handoff copy is discarded with NOT_STORED. A STORED or
// NOT_STORED reply makes the receiver authoritative, so the sender drops
// its local copy; a transport error or any other reply — the target
// shedding the add under overload, refusing it outright — means the value
// never landed, so the sender keeps its copy (harmless: routing no longer
// points here) and counts the miss toward Stats().Handoff.Errors.
package membership

import (
	"sort"
	"time"

	"pamakv/internal/overload"
	"pamakv/internal/proto"
)

// Scanner walks live resident items; *cache.Cache and *shard.Group
// implement it (see cache.ScanKeys).
type Scanner interface {
	ScanKeys(fn func(key string, pen float64, size int, expireAt int64) bool)
}

// Source is the engine surface the warm handoff needs: scan the residents,
// re-read a value at send time, and drop the local copy once the new owner
// is authoritative. *cache.Cache and *shard.Group satisfy it directly.
type Source interface {
	Scanner
	Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool)
	Delete(key string) bool
}

// HandoffKey is one key scheduled for streaming.
type HandoffKey struct {
	Key      string
	Pen      float64
	Size     int
	ExpireAt int64
	Target   string
}

// Plan scans src for resident keys that route away from this node and
// orders them highest penalty first (ties broken by key, so the plan is a
// deterministic function of the residents and the view). route returns the
// target owner and whether the key actually moved. The same ordering runs
// in the churn simulation (internal/sim), so the figure measures exactly
// the policy the live path ships.
func Plan(src Scanner, route func(key string) (target string, moved bool)) []HandoffKey {
	var plan []HandoffKey
	src.ScanKeys(func(key string, pen float64, size int, expireAt int64) bool {
		if target, moved := route(key); moved {
			plan = append(plan, HandoffKey{Key: key, Pen: pen, Size: size, ExpireAt: expireAt, Target: target})
		}
		return true
	})
	sort.Slice(plan, func(i, j int) bool {
		if plan[i].Pen != plan[j].Pen {
			return plan[i].Pen > plan[j].Pen
		}
		return plan[i].Key < plan[j].Key
	})
	return plan
}

// handoff is one streaming run; a newer Apply aborts it and starts a
// fresh one planned against the newer view.
type handoff struct {
	epoch uint64
	abort chan struct{}
}

func (h *handoff) abortOnce() {
	select {
	case <-h.abort:
	default:
		close(h.abort)
	}
}

// startHandoffLocked aborts any in-flight handoff and, when a source is
// bound and warm handoff is enabled, launches a new run for the view just
// applied. Caller holds m.mu (which also serializes the abort/close pair).
func (m *Manager) startHandoffLocked(epoch uint64) {
	if m.ho != nil {
		m.ho.abortOnce()
		m.ho = nil
	}
	if m.src == nil || m.cfg.HandoffRate < 0 || m.stopped {
		return
	}
	ho := &handoff{epoch: epoch, abort: make(chan struct{})}
	m.ho = ho
	m.wg.Add(1)
	go m.runHandoff(ho)
}

// tierOf reads the overload tier through fn (nil = always normal).
func tierOf(fn func() int) int {
	if fn == nil {
		return overload.TierNormal
	}
	return fn()
}

// runHandoff executes one penalty-ordered streaming run.
func (m *Manager) runHandoff(ho *handoff) {
	defer m.wg.Done()
	m.mu.Lock()
	src, tier := m.src, m.tier
	m.mu.Unlock()
	peers := m.cfg.Peers
	start := time.Now()

	plan := Plan(src, func(key string) (string, bool) {
		o := peers.Owner(key)
		return o, o != "" && o != m.self
	})
	m.hoPlanned.Add(uint64(len(plan)))
	if len(plan) == 0 {
		return
	}
	m.hoRuns.Add(1)
	m.hoActive.Store(true)
	defer m.hoActive.Store(false)
	m.logf("membership: epoch %d handoff: streaming %d keys", ho.epoch, len(plan))

	rate := m.cfg.HandoffRate
	if rate <= 0 {
		rate = DefaultHandoffRate
	}
	batch := m.cfg.HandoffBatch
	pause := time.Duration(batch) * (time.Second / time.Duration(rate))
	vbuf := make([]byte, 0, 16<<10)
	req := make([]byte, 0, 4<<10)
	sent := 0
	for _, hk := range plan {
		select {
		case <-ho.abort:
			m.hoAborts.Add(1)
			m.logf("membership: epoch %d handoff aborted after %d/%d keys", ho.epoch, sent, len(plan))
			return
		default:
		}
		// Yield under local pressure: pause outright at critical, crawl
		// at strained — recovering warmth must not worsen an overload.
		for tierOf(tier) >= overload.TierCritical {
			select {
			case <-ho.abort:
				m.hoAborts.Add(1)
				return
			case <-time.After(25 * time.Millisecond):
			}
		}
		if tierOf(tier) >= overload.TierStrained {
			time.Sleep(4 * time.Second / time.Duration(rate))
		}
		val, flags, ok := src.Get(hk.Key, hk.Size, hk.Pen, vbuf[:0])
		if !ok {
			continue // evicted or expired since the scan
		}
		if cap(val) > cap(vbuf) {
			vbuf = val[:0]
		}
		cl := peers.ClientFor(hk.Target)
		if cl == nil {
			m.hoErrors.Add(1)
			continue // target departed in a yet-newer view
		}
		req = proto.AppendCommand(req[:0], &proto.Command{
			Name: "add", Keys: []string{hk.Key}, Flags: flags,
			Exptime: hk.ExpireAt, Data: val,
		})
		resp, err := cl.Do(req)
		if err != nil {
			m.hoErrors.Add(1)
			continue
		}
		if resp.Status != "STORED" && resp.Status != "NOT_STORED" {
			// The target answered but the add did not take — shed under
			// overload, refused. It never became authoritative for this
			// key, so keep the local copy and count the miss (Do returns
			// a nil error for any well-formed reply, so the status check
			// is the only thing standing between a shed and a cold drop).
			m.hoErrors.Add(1)
			continue
		}
		// STORED or NOT_STORED: the new owner is authoritative either
		// way; drop the local copy to restore one-cache-line-per-key.
		m.hoKeys.Add(1)
		m.hoBytes.Add(uint64(len(val)))
		src.Delete(hk.Key)
		sent++
		if sent%batch == 0 {
			select {
			case <-ho.abort:
				m.hoAborts.Add(1)
				m.logf("membership: epoch %d handoff aborted after %d/%d keys", ho.epoch, sent, len(plan))
				return
			case <-time.After(pause):
			}
		}
	}
	m.hoDur.Observe(time.Since(start).Seconds())
	m.logf("membership: epoch %d handoff done: %d/%d keys in %s",
		ho.epoch, sent, len(plan), time.Since(start).Round(time.Millisecond))
}
