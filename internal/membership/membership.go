// Package membership turns the static cluster tier into a runtime one: a
// Manager on every node holds an epoch-versioned member list, drives
// cluster.Peers.SetMembers when the view changes, probes its peers and
// evicts the dead ones with hysteresis, and — the part the PAMA paper
// cares about — streams the keys whose arc changed hands from the old
// owner to the new one, highest miss penalty first, so the post-change
// cache is warm exactly where a cold miss would hurt most (see handoff.go).
//
// # View propagation
//
// Views ride the existing Memcached text protocol as reserved control
// keys, so no wire-format change (and no parser change) is needed:
//
//	set __pamakv.m.apply 0 0 N   body "epoch addr1,addr2,..."  → STORED
//	set __pamakv.m.join  0 0 N   body "addr"                   → STORED
//	get __pamakv.m.view          → VALUE body "epoch addr1,..."
//
// The server intercepts the "__pamakv.m." prefix ahead of admission
// control and routing: membership traffic must pass precisely when the
// node is overloaded or mid-reroute.
//
// # Epochs
//
// Every view carries an epoch. Apply refuses an epoch lower than the
// current one. An *equal* epoch with a different member list means two
// nodes proposed concurrently (say both auto-evicted different peers
// during a partition); that tie is broken deterministically — the
// lexicographically smaller encoded view wins on every node. The winner's
// push is adopted by the loser; the loser's push is refused, and the
// refused pusher pulls the winner's view (syncFrom) and adopts it, so
// both sides converge on one view immediately instead of staying split
// until an unrelated later epoch bump. A proposal whose intent lost the
// tie (an eviction, a join) is simply re-proposed later at a higher epoch
// by the probe loop or the retrying joiner. Equal epoch with an identical
// list is an idempotent no-op, so broadcast echoes converge silently. A
// node that finds itself outside the new view enters proxy mode
// (cluster.Peers allows a selector without self): it owns nothing,
// forwards everything, and drains its residents to their new owners —
// that is what a graceful drain is.
//
// # Trust model
//
// Control keys ride the data port, so anything that can reach the
// memcached port can speak membership — a strictly stronger capability
// than cache writes (a forged apply could hijack or dissolve the ring).
// Like memcached itself, the data port is assumed to live on a trusted
// network segment. Where that assumption is too weak, configure the same
// Config.Secret on every member: the mutating control keys (apply, join)
// must then carry the token and are refused otherwise (`-membership-secret`
// on pama-server). The view GET stays open — it exposes topology, not
// control. The secret authenticates peers on an honest network; it does
// not encrypt traffic and is no substitute for network-level isolation.
package membership

import (
	"bufio"
	"crypto/subtle"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pamakv/internal/cluster"
	"pamakv/internal/obs"
	"pamakv/internal/proto"
)

// Control keys: reserved keys carrying membership traffic over the normal
// data port. The prefix contains no tenant separator and is short enough
// for proto.CheckKey.
const (
	controlPrefix = "__pamakv.m."
	// KeyApply is SET with body "epoch addr1,addr2,..." to push a view.
	KeyApply = controlPrefix + "apply"
	// KeyJoin is SET with body "addr" to ask a member to admit a node.
	KeyJoin = controlPrefix + "join"
	// KeyView is GET to read the current view as "epoch addr1,addr2,...".
	KeyView = controlPrefix + "view"
)

// IsControlKey reports whether key is membership control traffic that the
// server must intercept before admission control and peer routing.
func IsControlKey(key string) bool { return strings.HasPrefix(key, controlPrefix) }

// EncodeView renders a view as the wire body "epoch addr1,addr2,...".
func EncodeView(epoch uint64, members []string) []byte {
	b := strconv.AppendUint(nil, epoch, 10)
	b = append(b, ' ')
	return append(b, strings.Join(members, ",")...)
}

// ParseView parses EncodeView's rendering.
func ParseView(body []byte) (uint64, []string, error) {
	s := strings.TrimSpace(string(body))
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return 0, nil, fmt.Errorf("membership: malformed view %q", s)
	}
	epoch, err := strconv.ParseUint(s[:sp], 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("membership: bad epoch in view %q: %w", s, err)
	}
	members := strings.Split(s[sp+1:], ",")
	return epoch, normalize(members), nil
}

// normalize sorts and dedupes a member list, dropping empties (mirrors the
// cluster package's selector normalization so views compare stably).
func normalize(members []string) []string {
	out := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if _, ok := seen[m]; ok {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Health states of a remote member as seen by the local prober.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
)

// Defaults for Config's zero values.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultProbeTimeout  = 500 * time.Millisecond
	DefaultSuspectAfter  = 3
	DefaultEvictAfter    = 6
	DefaultEvictCooldown = 10 * time.Second
	DefaultHandoffRate   = 4096
	DefaultHandoffBatch  = 32
)

// Config configures a Manager.
type Config struct {
	// Self is this node's data address as it appears in member lists.
	Self string
	// Peers is the routing table the manager drives.
	Peers *cluster.Peers

	// ProbeInterval is the health-probe cadence; 0 means
	// DefaultProbeInterval, < 0 disables probing (membership changes
	// then only happen via admin endpoints and pushed views).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip.
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive probe failures that mark a member
	// suspect; EvictAfter the count that proposes its eviction. One
	// probe success resets the counter (hysteresis: a flapping member
	// bounces between alive and suspect without being evicted).
	SuspectAfter int
	EvictAfter   int
	// EvictCooldown is the minimum gap between auto-evictions proposed
	// by this node — the churn-storm gate: a partition that kills probes
	// to several peers at once evicts them one cooldown apart, leaving
	// time for hit-ratio recovery (and for an operator to intervene)
	// instead of collapsing the ring in one storm.
	EvictCooldown time.Duration

	// HandoffRate caps warm-handoff streaming in keys/second; 0 means
	// DefaultHandoffRate, < 0 disables warm handoff entirely (membership
	// changes become cold rebalances — the baseline fig_churn compares
	// against).
	HandoffRate int
	// HandoffBatch is how many keys are sent between pacing sleeps.
	HandoffBatch int

	// Tier returns the local overload pressure tier (overload.Tier*);
	// nil means always normal. Handoff yields under pressure: it slows
	// at strained and pauses at critical.
	Tier func() int

	// Secret, when non-empty, gates the mutating control keys: outgoing
	// view pushes and join requests carry it as a leading token, and
	// incoming ones must present it (Authorize) or they are refused.
	// Every member and joiner must share the same value; it must not
	// contain whitespace. See the package's trust-model doc.
	Secret string

	// Probe overrides the health probe (tests inject failures); nil uses
	// a TCP dial + "version" round trip.
	Probe func(addr string) error

	// OnApply, when set, runs after every successfully applied view
	// (epoch already installed, routing already swapped).
	OnApply func(epoch uint64, members []string)

	// Logger receives membership transitions; nil disables logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.EvictAfter <= c.SuspectAfter {
		c.EvictAfter = c.SuspectAfter + DefaultEvictAfter - DefaultSuspectAfter
	}
	if c.EvictCooldown <= 0 {
		c.EvictCooldown = DefaultEvictCooldown
	}
	if c.HandoffRate == 0 {
		c.HandoffRate = DefaultHandoffRate
	}
	if c.HandoffBatch <= 0 {
		c.HandoffBatch = DefaultHandoffBatch
	}
	return c
}

// memberHealth is the prober's view of one remote member.
type memberHealth struct {
	state string
	fails int
}

// Manager is one node's membership state machine. Safe for concurrent use.
type Manager struct {
	cfg  Config
	self string

	mu      sync.Mutex
	epoch   uint64
	members []string
	health  map[string]*memberHealth
	// lastEvict gates auto-evictions (EvictCooldown).
	lastEvict time.Time
	ho        *handoff

	src  Source
	tier func() int

	stopC   chan struct{}
	stopped bool
	wg      sync.WaitGroup

	applies   atomic.Uint64
	refusals  atomic.Uint64
	joins     atomic.Uint64
	evictions atomic.Uint64
	suspectsN atomic.Uint64
	probes    atomic.Uint64
	probeFail atomic.Uint64

	hoRuns    atomic.Uint64
	hoPlanned atomic.Uint64
	hoKeys    atomic.Uint64
	hoBytes   atomic.Uint64
	hoErrors  atomic.Uint64
	hoAborts  atomic.Uint64
	hoActive  atomic.Bool

	probeLat *obs.Hist
	hoDur    *obs.Hist
}

// New builds a Manager seeded from the routing table's current member
// list at epoch 1. Call Start to begin probing and Stop on shutdown.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("membership: Self is required")
	}
	if cfg.Peers == nil {
		return nil, errors.New("membership: Peers is required")
	}
	m := &Manager{
		cfg:      cfg,
		self:     cfg.Self,
		epoch:    1,
		members:  normalize(cfg.Peers.Members()),
		health:   make(map[string]*memberHealth),
		tier:     cfg.Tier,
		stopC:    make(chan struct{}),
		probeLat: obs.NewHist(1e-6, 7),
		hoDur:    obs.NewHist(1e-4, 7),
	}
	m.syncHealthLocked()
	return m, nil
}

// BindSource attaches the engine the warm handoff scans and streams from.
// Without a source every membership change is a cold rebalance.
func (m *Manager) BindSource(src Source) {
	m.mu.Lock()
	m.src = src
	m.mu.Unlock()
}

// BindTier attaches the overload tier probe handoff pacing consults.
func (m *Manager) BindTier(fn func() int) {
	m.mu.Lock()
	m.tier = fn
	m.mu.Unlock()
}

// Start launches the health-probe loop (no-op when probing is disabled).
func (m *Manager) Start() {
	if m.cfg.ProbeInterval < 0 {
		return
	}
	m.wg.Add(1)
	go m.probeLoop()
}

// Stop halts probing and aborts any in-flight handoff, then waits for the
// manager's goroutines.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	close(m.stopC)
	if m.ho != nil {
		m.ho.abortOnce()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// View returns the current epoch and member list.
func (m *Manager) View() (uint64, []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch, append([]string(nil), m.members...)
}

// Epoch returns the current membership epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// IsMember reports whether addr is in the current view.
func (m *Manager) IsMember(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.isMemberLocked(addr)
}

func (m *Manager) isMemberLocked(addr string) bool {
	for _, mm := range m.members {
		if mm == addr {
			return true
		}
	}
	return false
}

// equalView reports member-list equality (both sides normalized).
func equalView(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// viewWins reports whether the incoming member list beats the current one
// in the equal-epoch tie-break: the lexicographically smaller encoded view
// wins. Every node evaluates the same pure comparison, so concurrent
// proposals at one epoch converge to a single winner cluster-wide.
func viewWins(epoch uint64, incoming, current []string) bool {
	return string(EncodeView(epoch, incoming)) < string(EncodeView(epoch, current))
}

// Apply installs view (epoch, members) if it supersedes the current one:
// the routing table is swapped first (cutover), then the warm handoff of
// keys this node no longer owns starts in the background. An epoch lower
// than the current one is refused, which is what makes stale routing
// pushes detectable instead of silently regressive. An equal epoch with a
// different member list is a concurrent-proposal conflict, resolved by
// the deterministic tie-break (viewWins): the winning view is adopted,
// the losing one refused — the refused pusher then pulls the winner via
// syncFrom, so both proposers converge. origin is only for logs.
func (m *Manager) Apply(epoch uint64, members []string, origin string) error {
	members = normalize(members)
	if len(members) == 0 {
		return errors.New("membership: refusing empty member list")
	}
	m.mu.Lock()
	if epoch < m.epoch {
		m.refusals.Add(1)
		cur := m.epoch
		m.mu.Unlock()
		return fmt.Errorf("membership: epoch %d is stale (have %d)", epoch, cur)
	}
	if epoch == m.epoch {
		if equalView(members, m.members) {
			m.mu.Unlock()
			return nil // idempotent echo
		}
		if !viewWins(epoch, members, m.members) {
			m.refusals.Add(1)
			cur := m.epoch
			m.mu.Unlock()
			return fmt.Errorf("membership: conflicting view at epoch %d loses tie-break (have %d members)", epoch, cur)
		}
		// The incoming view wins the tie-break: fall through and install
		// it at the same epoch, exactly as if it were newer.
	}
	if err := m.cfg.Peers.SetMembers(members); err != nil {
		m.mu.Unlock()
		return err
	}
	m.epoch = epoch
	m.members = append([]string(nil), members...)
	m.syncHealthLocked()
	m.applies.Add(1)
	m.startHandoffLocked(epoch)
	m.mu.Unlock()
	m.logf("membership: applied epoch %d (%d members, from %s)", epoch, len(members), origin)
	if m.cfg.OnApply != nil {
		m.cfg.OnApply(epoch, members)
	}
	return nil
}

// syncHealthLocked reconciles the health map with the member list.
func (m *Manager) syncHealthLocked() {
	keep := make(map[string]struct{}, len(m.members))
	for _, mm := range m.members {
		keep[mm] = struct{}{}
		if mm != m.self {
			if _, ok := m.health[mm]; !ok {
				m.health[mm] = &memberHealth{state: StateAlive}
			}
		}
	}
	for addr := range m.health {
		if _, ok := keep[addr]; !ok {
			delete(m.health, addr)
		}
	}
}

// Join admits addr: the proposer bumps the epoch, applies locally, and
// broadcasts the new view to every member including the joiner. Idempotent
// for an existing member — but since the admission broadcast is best
// effort, a joiner whose view push was lost (socket not yet ready, blip)
// retries Join and lands on the idempotent path while already in the
// ring; the current view is re-sent to it there, so it learns the
// membership instead of timing out while peers route keys its way.
func (m *Manager) Join(addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return errors.New("membership: empty join address")
	}
	m.mu.Lock()
	if m.isMemberLocked(addr) {
		epoch := m.epoch
		body := EncodeView(epoch, m.members)
		m.mu.Unlock()
		if resp, err := m.send(addr, renderControlSet(KeyApply, m.wrapAuth(body))); err != nil {
			m.logf("membership: view re-push to %s failed: %v", addr, err)
		} else if resp.Status != "STORED" {
			m.logf("membership: %s refused view re-push at epoch %d: %s %s",
				addr, epoch, resp.Status, resp.Message)
		}
		return nil
	}
	next := append(append([]string(nil), m.members...), addr)
	m.mu.Unlock()
	m.joins.Add(1)
	return m.propose(next, "join "+addr)
}

// Remove evicts addr from the view. The removed node is still told about
// the new view (best effort): a live removed node applies it, finds itself
// outside the ring, and drains its residents to the new owners — removing
// self is therefore exactly a graceful drain.
func (m *Manager) Remove(addr string) error {
	addr = strings.TrimSpace(addr)
	m.mu.Lock()
	if !m.isMemberLocked(addr) {
		m.mu.Unlock()
		return fmt.Errorf("membership: %q is not a member", addr)
	}
	if len(m.members) == 1 {
		m.mu.Unlock()
		return errors.New("membership: refusing to remove the last member")
	}
	next := make([]string, 0, len(m.members)-1)
	for _, mm := range m.members {
		if mm != addr {
			next = append(next, mm)
		}
	}
	m.mu.Unlock()
	return m.propose(next, "remove "+addr)
}

// Drain removes self: routing flips to the surviving members and this
// node streams everything it holds to the new owners (highest penalty
// first). Poll Stats().Handoff until Active is false, then shut down.
func (m *Manager) Drain() error { return m.Remove(m.self) }

// propose applies members at epoch+1 locally and broadcasts the view to
// the union of the old and new member lists (minus self).
func (m *Manager) propose(members []string, why string) error {
	m.mu.Lock()
	next := m.epoch + 1
	targets := make(map[string]struct{}, len(m.members)+len(members))
	for _, mm := range m.members {
		targets[mm] = struct{}{}
	}
	for _, mm := range members {
		targets[mm] = struct{}{}
	}
	m.mu.Unlock()
	if err := m.Apply(next, members, "local: "+why); err != nil {
		return err
	}
	m.broadcast(next, normalize(members), targets)
	return nil
}

// broadcast pushes a view to every target in parallel and waits. A target
// that refuses the view as stale holds a newer one; its view is pulled and
// applied locally so the cluster converges instead of ping-ponging.
func (m *Manager) broadcast(epoch uint64, members []string, targets map[string]struct{}) {
	body := EncodeView(epoch, members)
	req := renderControlSet(KeyApply, m.wrapAuth(body))
	var wg sync.WaitGroup
	for addr := range targets {
		if addr == m.self {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			resp, err := m.send(addr, req)
			if err != nil {
				m.logf("membership: push epoch %d to %s failed: %v", epoch, addr, err)
				return
			}
			if resp.Status != "STORED" {
				m.logf("membership: %s refused epoch %d: %s %s", addr, epoch, resp.Status, resp.Message)
				m.syncFrom(addr)
			}
		}(addr)
	}
	wg.Wait()
}

// renderControlSet renders "set <key> 0 0 <len>\r\n<body>\r\n".
func renderControlSet(key string, body []byte) []byte {
	return proto.AppendCommand(nil, &proto.Command{
		Name: "set", Keys: []string{key}, Data: body,
	})
}

// wrapAuth prefixes a mutating control-key body with the shared secret
// (identity when none is configured). The inverse of Authorize.
func (m *Manager) wrapAuth(body []byte) []byte {
	if m.cfg.Secret == "" {
		return body
	}
	out := make([]byte, 0, len(m.cfg.Secret)+1+len(body))
	out = append(out, m.cfg.Secret...)
	out = append(out, ' ')
	return append(out, body...)
}

// Authorize validates the shared-secret token on the body of a mutating
// control key (apply, join) and returns the payload with the token
// stripped. With no secret configured every body passes unchanged — the
// trust boundary is then the network, as documented in the package doc.
func (m *Manager) Authorize(body []byte) ([]byte, error) {
	if m.cfg.Secret == "" {
		return body, nil
	}
	sp := -1
	for i, b := range body {
		if b == ' ' {
			sp = i
			break
		}
	}
	if sp < 0 || subtle.ConstantTimeCompare(body[:sp], []byte(m.cfg.Secret)) != 1 {
		return nil, errors.New("membership: bad or missing auth token")
	}
	return body[sp+1:], nil
}

// send routes a control request through the pooled peer client when addr
// is a current member, or a one-shot dial otherwise (a joiner talking to
// its seed, a proposer notifying a removed node).
func (m *Manager) send(addr string, req []byte) (*proto.Response, error) {
	if cl := m.cfg.Peers.ClientFor(addr); cl != nil {
		return cl.Do(req)
	}
	return dialDo(addr, req, 2*time.Second)
}

// dialDo runs one request/response round trip on a fresh connection.
func dialDo(addr string, req []byte, timeout time.Duration) (*proto.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(req); err != nil {
		return nil, err
	}
	return proto.ReadResponse(bufio.NewReader(conn))
}

// syncFrom pulls addr's view and applies it if it supersedes the local
// one — strictly newer, or winning the equal-epoch tie-break (the
// convergence half of a refused concurrent proposal).
func (m *Manager) syncFrom(addr string) {
	resp, err := m.send(addr, []byte("get "+KeyView+"\r\n"))
	if err != nil || len(resp.Values) == 0 {
		return
	}
	epoch, members, err := ParseView(resp.Values[0].Data)
	if err != nil {
		return
	}
	if err := m.Apply(epoch, members, "sync from "+addr); err == nil {
		m.logf("membership: adopted epoch %d from %s", epoch, addr)
	}
}

// JoinCluster runs the joiner side of -join: ask seed to admit Self, then
// wait until the seed's broadcast lands and this node is in the view. The
// local server must already be listening (the admission broadcast arrives
// on the data port). Retries until timeout.
func (m *Manager) JoinCluster(seed string, timeout time.Duration) error {
	if seed == m.self {
		return errors.New("membership: cannot join via self")
	}
	req := renderControlSet(KeyJoin, m.wrapAuth([]byte(m.self)))
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := dialDo(seed, req, 2*time.Second)
		switch {
		case err != nil:
			lastErr = err
		case resp.Status != "STORED":
			lastErr = fmt.Errorf("membership: seed %s: %s %s", seed, resp.Status, resp.Message)
		default:
			// Admitted. The seed broadcast the view before replying, but
			// poll briefly in case our apply raced the reply.
			for i := 0; i < 40; i++ {
				if m.IsMember(m.self) && m.Epoch() > 1 {
					return nil
				}
				time.Sleep(50 * time.Millisecond)
			}
			// The broadcast push was lost (our socket raced the seed's
			// send, or the network blipped): pull the view directly
			// instead of waiting for the next retry's re-push.
			m.syncFrom(seed)
			if m.IsMember(m.self) && m.Epoch() > 1 {
				return nil
			}
			lastErr = errors.New("membership: admitted but view never arrived")
		}
		select {
		case <-m.stopC:
			return errors.New("membership: stopped")
		case <-time.After(250 * time.Millisecond):
		}
	}
	return fmt.Errorf("membership: join via %s timed out: %w", seed, lastErr)
}

// ---- Health probing ----

func (m *Manager) probeLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopC:
			return
		case <-t.C:
			m.probeOnce()
		}
	}
}

// probe runs one health check against addr.
func (m *Manager) probe(addr string) error {
	if m.cfg.Probe != nil {
		return m.cfg.Probe(addr)
	}
	resp, err := dialDo(addr, []byte("version\r\n"), m.cfg.ProbeTimeout)
	if err != nil {
		return err
	}
	if resp.Status != "VERSION" {
		return fmt.Errorf("membership: probe of %s: unexpected %s", addr, resp.Status)
	}
	return nil
}

// probeOnce probes every remote member in parallel, updates health states
// with hysteresis, and — cooldown permitting — proposes at most one
// eviction.
func (m *Manager) probeOnce() {
	m.mu.Lock()
	addrs := make([]string, 0, len(m.health))
	for addr := range m.health {
		addrs = append(addrs, addr)
	}
	m.mu.Unlock()
	sort.Strings(addrs)

	type outcome struct {
		addr string
		err  error
	}
	results := make([]outcome, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			start := time.Now()
			err := m.probe(addr)
			m.probeLat.Observe(time.Since(start).Seconds())
			results[i] = outcome{addr, err}
		}(i, addr)
	}
	wg.Wait()

	var evict string
	m.mu.Lock()
	for _, r := range results {
		h, ok := m.health[r.addr]
		if !ok {
			continue // departed while probing
		}
		m.probes.Add(1)
		if r.err == nil {
			// Hysteresis: one good probe fully recovers a suspect.
			if h.state == StateSuspect {
				m.logf("membership: %s recovered", r.addr)
			}
			h.state, h.fails = StateAlive, 0
			continue
		}
		m.probeFail.Add(1)
		h.fails++
		if h.fails >= m.cfg.SuspectAfter && h.state != StateSuspect {
			h.state = StateSuspect
			m.suspectsN.Add(1)
			m.logf("membership: %s suspect after %d failed probes", r.addr, h.fails)
		}
		if h.fails >= m.cfg.EvictAfter && evict == "" {
			evict = r.addr
		}
	}
	// Eviction gate: only a current member steers the ring, only one
	// eviction per cooldown, never below one member.
	if evict != "" {
		if !m.isMemberLocked(m.self) || len(m.members) <= 1 ||
			time.Since(m.lastEvict) < m.cfg.EvictCooldown {
			evict = ""
		} else {
			m.lastEvict = time.Now()
		}
	}
	m.mu.Unlock()
	if evict != "" {
		m.evictions.Add(1)
		m.logf("membership: evicting unresponsive member %s", evict)
		if err := m.Remove(evict); err != nil {
			m.logf("membership: eviction of %s failed: %v", evict, err)
		}
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}

// ---- Stats ----

// MemberStatus is one member row in Stats.
type MemberStatus struct {
	Addr string `json:"addr"`
	// State is "self", "alive", or "suspect".
	State string `json:"state"`
	// ProbeFails is the current consecutive-failure count.
	ProbeFails int `json:"probe_fails,omitempty"`
}

// HandoffStats aggregates warm-handoff progress counters.
type HandoffStats struct {
	Active      bool             `json:"active"`
	Runs        uint64           `json:"runs"`
	KeysPlanned uint64           `json:"keys_planned"`
	KeysSent    uint64           `json:"keys_sent"`
	BytesSent   uint64           `json:"bytes_sent"`
	Errors      uint64           `json:"errors"`
	Aborts      uint64           `json:"aborts"`
	Duration    obs.HistSnapshot `json:"duration_seconds"`
}

// Stats is a point-in-time snapshot of the membership state machine.
type Stats struct {
	Self     string         `json:"self"`
	Epoch    uint64         `json:"epoch"`
	Draining bool           `json:"draining"`
	Members  []MemberStatus `json:"members"`

	Applies       uint64 `json:"applies"`
	Refusals      uint64 `json:"refusals"`
	Joins         uint64 `json:"joins"`
	Suspects      uint64 `json:"suspects"`
	Evictions     uint64 `json:"evictions"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`

	ProbeLatency obs.HistSnapshot `json:"probe_latency"`
	Handoff      HandoffStats     `json:"handoff"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	members := make([]MemberStatus, 0, len(m.members))
	selfIn := false
	for _, addr := range m.members {
		ms := MemberStatus{Addr: addr, State: StateAlive}
		if addr == m.self {
			ms.State = "self"
			selfIn = true
		} else if h, ok := m.health[addr]; ok {
			ms.State = h.state
			ms.ProbeFails = h.fails
		}
		members = append(members, ms)
	}
	epoch := m.epoch
	m.mu.Unlock()
	return Stats{
		Self:          m.self,
		Epoch:         epoch,
		Draining:      !selfIn,
		Members:       members,
		Applies:       m.applies.Load(),
		Refusals:      m.refusals.Load(),
		Joins:         m.joins.Load(),
		Suspects:      m.suspectsN.Load(),
		Evictions:     m.evictions.Load(),
		Probes:        m.probes.Load(),
		ProbeFailures: m.probeFail.Load(),
		ProbeLatency:  m.probeLat.Snapshot(),
		Handoff: HandoffStats{
			Active:      m.hoActive.Load(),
			Runs:        m.hoRuns.Load(),
			KeysPlanned: m.hoPlanned.Load(),
			KeysSent:    m.hoKeys.Load(),
			BytesSent:   m.hoBytes.Load(),
			Errors:      m.hoErrors.Load(),
			Aborts:      m.hoAborts.Load(),
			Duration:    m.hoDur.Snapshot(),
		},
	}
}
