// Package accessbuf implements the fixed-size lock-free rings that carry
// deferred GET-hit records from the cache engine's read fast path to its
// batched policy-maintenance drain (the BP-Wrapper recipe, also the shape of
// Memcached's lru-maintainer thread).
//
// A GET hit serves the value under a short engine-lock critical section —
// index lookup, expiry check, value copy — and records the touched item into
// a ring *after* releasing the lock. The accumulated records are later
// applied in one lock acquisition (when a ring fills, on the next mutating
// operation, or by the engine's background maintainer), so the per-access
// cost of LRU surgery, segment pricing, and window attribution is amortized
// over the batch instead of serializing every read.
//
// The ring is a bounded MPSC queue in the style of Vyukov's bounded MPMC
// queue: producers reserve a slot with one CAS on the head counter and
// publish it by storing the slot's sequence number; the single consumer (who
// must hold the engine lock, which is what makes it single) pops published
// slots in order and stops at the first slot still being written. Records
// are plain values — the queue never allocates after construction, which is
// what keeps the served-GET path at zero allocations per request.
package accessbuf

import (
	"sync/atomic"

	"pamakv/internal/kv"
)

// Record is one deferred cache access. It carries everything the drain
// needs to validate and apply the touch without re-hashing the key.
type Record struct {
	// It is the resident item that was read. The pointer may be stale by
	// drain time (the item may have been deleted, evicted, replaced, or
	// re-slabbed); the drain revalidates it against CAS before touching
	// anything.
	It *kv.Item
	// CAS is the item's store token at access time — its incarnation id.
	// Tokens are issued from a per-engine monotonic counter, so a freed
	// and reused item can never present the token recorded here.
	CAS uint64
	// Pen is the item's miss penalty observed at access time (seconds).
	Pen float64
}

type slot struct {
	seq atomic.Uint64
	rec Record
}

// Ring is one bounded MPSC access ring. Producers call Push concurrently;
// Drain must only be called by one consumer at a time (the cache engine
// drains under its lock).
type Ring struct {
	mask  uint64
	slots []slot
	_     [48]byte // keep head/tail off the slots' cache lines
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
}

// New returns a ring holding capacity records, rounded up to a power of two
// (minimum 8).
func New(capacity int) *Ring {
	n := 8
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the approximate number of buffered records (racy by nature;
// used for gauges and the maintainer's "anything to do?" check).
func (r *Ring) Len() int {
	h, t := r.head.Load(), r.tail.Load()
	if h < t {
		return 0
	}
	if n := h - t; n <= r.mask+1 {
		return int(n)
	}
	return len(r.slots)
}

// Push records one access, reporting false when the ring is full (the
// caller then drains in-line). Safe for concurrent producers; never
// allocates.
func (r *Ring) Push(rec Record) bool {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.head.CompareAndSwap(pos, pos+1) {
				s.rec = rec
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case seq < pos:
			// The slot still holds a record one full lap behind: full.
			return false
		default:
			// Another producer claimed pos; reload.
			pos = r.head.Load()
		}
	}
}

// Drain pops every published record in order, calling fn for each, and
// returns the count. It stops early at a slot a producer has reserved but
// not yet published — that record (and any behind it) is picked up by the
// next drain. Single consumer only.
func (r *Ring) Drain(fn func(Record)) int {
	n := 0
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			break
		}
		rec := s.rec
		s.rec = Record{} // drop the item reference; slots outlive batches
		s.seq.Store(pos + r.mask + 1)
		pos++
		r.tail.Store(pos)
		fn(rec)
		n++
	}
	return n
}
