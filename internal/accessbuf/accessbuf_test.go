package accessbuf

import (
	"sync"
	"testing"

	"pamakv/internal/kv"
)

func TestPushDrainOrder(t *testing.T) {
	r := New(16)
	items := make([]kv.Item, 5)
	for i := range items {
		if !r.Push(Record{It: &items[i], CAS: uint64(i + 1)}) {
			t.Fatalf("push %d refused on non-full ring", i)
		}
	}
	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	var cas []uint64
	if n := r.Drain(func(rec Record) { cas = append(cas, rec.CAS) }); n != 5 {
		t.Fatalf("Drain = %d, want 5", n)
	}
	for i, c := range cas {
		if c != uint64(i+1) {
			t.Fatalf("record %d drained out of order: cas %d", i, c)
		}
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
}

func TestPushReportsFull(t *testing.T) {
	r := New(8)
	it := &kv.Item{}
	for i := 0; i < r.Cap(); i++ {
		if !r.Push(Record{It: it}) {
			t.Fatalf("push %d refused before capacity", i)
		}
	}
	if r.Push(Record{It: it}) {
		t.Fatal("push accepted on full ring")
	}
	r.Drain(func(Record) {})
	if !r.Push(Record{It: it}) {
		t.Fatal("push refused after drain freed the ring")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 8}, {1, 8}, {9, 16}, {64, 64}, {100, 128}} {
		if got := New(tc.ask).Cap(); got != tc.want {
			t.Fatalf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestConcurrentProducers hammers the ring from many goroutines with a
// single consumer draining in parallel, then checks nothing was lost or
// duplicated. Run under -race this is also the memory-model check.
func TestConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := New(64)
	it := &kv.Item{}

	var consumed sync.Map // cas -> struct{}
	var total int
	var mu sync.Mutex // serializes Drain: single consumer
	drain := func() {
		mu.Lock()
		n := r.Drain(func(rec Record) {
			if _, dup := consumed.LoadOrStore(rec.CAS, struct{}{}); dup {
				t.Errorf("cas %d drained twice", rec.CAS)
			}
		})
		total += n
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				rec := Record{It: it, CAS: uint64(p*perProducer + i + 1)}
				for !r.Push(rec) {
					drain()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				drain()
			}
		}
	}()
	wg.Wait()
	close(done)
	drain()

	want := producers * perProducer
	mu.Lock()
	got := total
	mu.Unlock()
	if got != want {
		t.Fatalf("drained %d records, want %d", got, want)
	}
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			if _, ok := consumed.Load(uint64(p*perProducer + i + 1)); !ok {
				t.Fatalf("record %d/%d lost", p, i)
			}
		}
	}
}

func BenchmarkPush(b *testing.B) {
	r := New(1 << 16)
	it := &kv.Item{}
	var mu sync.Mutex // serializes the inline drain: single consumer
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var cas uint64
		for pb.Next() {
			cas++
			for !r.Push(Record{It: it, CAS: cas}) {
				mu.Lock()
				r.Drain(func(Record) {})
				mu.Unlock()
			}
		}
	})
}
