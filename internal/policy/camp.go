package policy

// CAMP — "CAMP: A Cost Adaptive Multi-Queue Eviction Policy for Key-Value
// Stores" (Ghandeharizadeh et al., PAPERS.md) — approximates GreedyDual
// with O(#queues) eviction instead of a global priority heap. Each item's
// priority is L + r, where r is its cost/size ratio rounded to a few
// significant bits and L is an inflation clock that rises to every evicted
// item's priority. Items sharing a rounded ratio form one queue; within a
// queue priorities are non-decreasing from tail to head (same r, L
// monotone), so the tail of each queue is its cheapest item and the global
// victim is the cheapest queue tail. Rounding bounds the queue count, and
// the inflation clock ages out items whose high cost no longer justifies
// their stay.
//
// The policy mirrors resident items in its own queue structure, fed by the
// engine's OnInsert/OnHit/OnEvict hooks plus the RemovalObserver hook for
// non-eviction removals (delete, expiry, replace, flush); Attach rebuilds
// the mirror from the engine index, which makes it safe to re-attach after
// a live re-slab transition.

import (
	"math"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// campEntry mirrors one resident item inside its ratio queue.
type campEntry struct {
	key        string
	class      int
	prio       float64
	seq        uint64 // tie-break: older (smaller) evicts first
	q          *campQueue
	prev, next *campEntry
}

// campQueue is one ratio class: a doubly linked list, head = most recent.
type campQueue struct {
	r          float64
	head, tail *campEntry
}

func (q *campQueue) pushHead(e *campEntry) {
	e.q, e.prev, e.next = q, nil, q.head
	if q.head != nil {
		q.head.prev = e
	}
	q.head = e
	if q.tail == nil {
		q.tail = e
	}
}

func (q *campQueue) remove(e *campEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev, e.next, e.q = nil, nil, nil
}

// CAMP is the cost-adaptive multi-queue policy.
type CAMP struct {
	c *cache.Cache
	// Precision is the number of significant mantissa bits kept when
	// rounding cost/size ratios (the paper's p); fewer bits mean fewer
	// queues and a coarser cost model. Default 4.
	Precision uint

	l       float64
	seq     uint64
	entries map[string]*campEntry
	queues  map[uint64]*campQueue // keyed by Float64bits of the rounded ratio

	// Migrations counts cross-class slab moves (tests/introspection).
	Migrations uint64
}

// NewCAMP returns the policy with the default ratio precision.
func NewCAMP() *CAMP { return &CAMP{Precision: 4} }

// Name implements cache.Policy.
func (*CAMP) Name() string { return "camp" }

// SubclassBounds implements cache.Policy: one stack per class.
func (*CAMP) SubclassBounds() []float64 { return nil }

// Segments implements cache.Policy: no engine segment tracking.
func (*CAMP) Segments() int { return 0 }

// GhostSegments implements cache.Policy: no ghost regions.
func (*CAMP) GhostSegments() int { return 0 }

// Attach implements cache.Policy, rebuilding the mirror from the engine
// index (empty at construction; populated after a re-slab re-attach).
func (p *CAMP) Attach(c *cache.Cache) {
	p.c = c
	if p.Precision == 0 {
		p.Precision = 4
	}
	p.entries = make(map[string]*campEntry)
	p.queues = make(map[uint64]*campQueue)
	c.RangeItems(func(it *kv.Item) bool {
		p.insert(it)
		return true
	})
}

// RoundRatio rounds r to the policy's precision: the paper's bounded-queues
// trick. Exported for the oracle test's reference implementation.
func (p *CAMP) RoundRatio(r float64) float64 {
	if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		return 0
	}
	frac, exp := math.Frexp(r)
	scale := math.Ldexp(1, int(p.Precision))
	return math.Ldexp(math.Round(frac*scale)/scale, exp)
}

// ratio is the item's cost/size ratio: miss penalty per byte. Items whose
// penalty is unknown (0) compete on recency alone within the zero queue.
func (p *CAMP) ratio(it *kv.Item) float64 {
	if it.Size <= 0 {
		return 0
	}
	return p.RoundRatio(it.Penalty / float64(it.Size))
}

func (p *CAMP) queueFor(r float64) *campQueue {
	k := math.Float64bits(r)
	q := p.queues[k]
	if q == nil {
		q = &campQueue{r: r}
		p.queues[k] = q
	}
	return q
}

func (p *CAMP) insert(it *kv.Item) {
	if old := p.entries[it.Key]; old != nil {
		p.drop(old)
	}
	r := p.ratio(it)
	p.seq++
	e := &campEntry{key: it.Key, class: it.Class, prio: p.l + r, seq: p.seq}
	// Seq is free when segment tracking is off; the insertion clock there
	// makes mirror state visible to tests and debuggers.
	it.Seq = e.seq
	p.entries[it.Key] = e
	p.queueFor(r).pushHead(e)
}

func (p *CAMP) drop(e *campEntry) {
	q := e.q
	q.remove(e)
	if q.head == nil {
		delete(p.queues, math.Float64bits(q.r))
	}
	delete(p.entries, e.key)
}

// OnInsert implements cache.Policy.
func (p *CAMP) OnInsert(it *kv.Item) { p.insert(it) }

// OnHit implements cache.Policy: the touched item is re-queued at its
// queue's head with a freshly inflated priority.
func (p *CAMP) OnHit(it *kv.Item, _ int) {
	e := p.entries[it.Key]
	if e == nil {
		return
	}
	q := e.q
	q.remove(e)
	r := q.r
	e.prio = p.l + r
	p.seq++
	e.seq = p.seq
	e.class = it.Class
	p.queueFor(r).pushHead(e)
}

// OnEvict implements cache.Policy: raise the inflation clock to the evicted
// priority (the GreedyDual aging step) and drop the mirror entry.
func (p *CAMP) OnEvict(it *kv.Item) {
	if e := p.entries[it.Key]; e != nil {
		if e.prio > p.l {
			p.l = e.prio
		}
		p.drop(e)
	}
}

// OnRemove implements cache.RemovalObserver: non-eviction removals leave
// the clock alone.
func (p *CAMP) OnRemove(it *kv.Item) {
	if e := p.entries[it.Key]; e != nil {
		p.drop(e)
	}
}

// OnMiss implements cache.Policy.
func (*CAMP) OnMiss(int, int, *kv.Item, int) {}

// OnWindow implements cache.Policy.
func (*CAMP) OnWindow() {}

// Victim returns the key and class of the global minimum-priority resident
// (the cheapest queue tail, sequence-number tie-break), or ok=false when
// the mirror is empty. Exported for the oracle test.
func (p *CAMP) Victim() (key string, class int, ok bool) {
	var best *campEntry
	for _, q := range p.queues {
		t := q.tail
		if t == nil {
			continue
		}
		if best == nil || t.prio < best.prio || (t.prio == best.prio && t.seq < best.seq) {
			best = t
		}
	}
	if best == nil {
		return "", -1, false
	}
	return best.key, best.class, true
}

// MakeRoom implements cache.Policy: evict globally cheapest items. When the
// cheapest victim already lives in the requesting class its slot frees the
// class directly; otherwise victims drain their own class until it can
// donate a whole slab, which then migrates over.
func (p *CAMP) MakeRoom(class, _ int) {
	c := p.c
	// Bound the drain: freeing one slab of the cheapest class costs at most
	// its slots-per-slab evictions; anything beyond that means mirror and
	// engine disagree, so fall back rather than loop.
	for guard := 0; guard < 4; guard++ {
		key, vclass, ok := p.Victim()
		if !ok {
			c.EvictOneInClass(class)
			return
		}
		if vclass == class {
			if c.EvictKey(key) {
				return
			}
			// Stale mirror entry: drop and retry.
			if e := p.entries[key]; e != nil {
				p.drop(e)
			}
			continue
		}
		// Evict cheapest items out of vclass until it can donate a slab.
		spc := c.SlotsPerSlab(vclass)
		for i := 0; i < spc && c.FreeSlots(vclass) < spc; i++ {
			k, vc, ok := p.Victim()
			if !ok || vc != vclass {
				break
			}
			if !c.EvictKey(k) {
				if e := p.entries[k]; e != nil {
					p.drop(e)
				}
				break
			}
		}
		if c.FreeSlots(vclass) >= spc && c.Slabs(vclass) > 0 {
			if err := c.MigrateSlab(vclass, 0, class); err == nil {
				p.Migrations++
				return
			}
		}
	}
	c.EvictOneInClass(class)
}

// ReportDecisions implements cache.DecisionReporter.
func (p *CAMP) ReportDecisions() cache.PolicyDecisions {
	return cache.PolicyDecisions{Migrations: p.Migrations}
}

// Interface conformance checks.
var (
	_ cache.Policy           = (*CAMP)(nil)
	_ cache.RemovalObserver  = (*CAMP)(nil)
	_ cache.DecisionReporter = (*CAMP)(nil)
)
