package policy

import (
	"fmt"
	"testing"

	"pamakv/internal/cache"
)

func newMRCCache(t *testing.T, slabs int, obj MRCObjective, window uint64) (*cache.Cache, *MRC) {
	t.Helper()
	m := NewMRC(obj)
	c, err := cache.New(cache.Config{
		Geometry:   smallGeom(),
		CacheBytes: int64(slabs) * 4096,
		WindowLen:  window,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestMRCShapes(t *testing.T) {
	m := NewMRC(ObjectiveMissRatio)
	if m.Name() != "mrc-hit" || m.Segments() != 1 || m.GhostSegments() != 1 || m.SubclassBounds() != nil {
		t.Fatalf("mrc shape wrong: %s %d %d", m.Name(), m.Segments(), m.GhostSegments())
	}
	if NewMRC(ObjectiveAvgTime).Name() != "mrc-time" {
		t.Fatal("time objective name")
	}
}

func TestMRCMovesTowardGain(t *testing.T) {
	c, m := newMRCCache(t, 3, ObjectiveMissRatio, 400)
	// Class 0: two slabs of items never touched again (no marginal loss).
	fill(c, "cold", 128, 50)
	// Class 1: one slab, under constant pressure with rereferenced
	// overflow -> ghost receiving-segment hits (marginal gain).
	fill(c, "hot", 32, 100)
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("hot%d", i%48) // working set 1.5x the class's space
		if _, _, hit := c.Get(k, 100, 0.1, nil); !hit {
			c.Set(k, 100, 0.1, 0, nil)
		}
	}
	if m.Moves == 0 {
		t.Fatal("MRC never reallocated")
	}
	if c.Slabs(1) < 2 {
		t.Fatalf("pressured class did not gain slabs: %v", c.SnapshotSlabs())
	}
	if c.Slabs(0) != 1 {
		t.Fatalf("idle class should be drained to one slab, has %d", c.Slabs(0))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMRCQuietDuringGrowth(t *testing.T) {
	c, m := newMRCCache(t, 8, ObjectiveMissRatio, 100)
	fill(c, "a", 64, 50)
	for i := 0; i < 500; i++ {
		c.Get(fmt.Sprintf("a%d", i%64), 0, 0, nil)
	}
	if m.Moves != 0 {
		t.Fatal("MRC moved slabs while free slabs remained")
	}
}

func TestMRCDonorsKeepOneSlab(t *testing.T) {
	c, m := newMRCCache(t, 2, ObjectiveMissRatio, 200)
	fill(c, "cold", 64, 50) // class 0, one slab
	fill(c, "hot", 32, 100) // class 1, one slab
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("hot%d", i%64)
		if _, _, hit := c.Get(k, 100, 0.1, nil); !hit {
			c.Set(k, 100, 0.1, 0, nil)
		}
	}
	if m.Moves != 0 {
		t.Fatal("MRC robbed a single-slab donor")
	}
	if c.Slabs(0) != 1 {
		t.Fatal("class 0 lost its only slab")
	}
}

func TestMRCTimeObjectiveWeighsPenalty(t *testing.T) {
	// Two classes with identical marginal hit counts; the time objective
	// must prefer granting the slab to the class with expensive misses.
	run := func(obj MRCObjective) []int {
		c, _ := newMRCCache(&testing.T{}, 4, obj, 500)
		fill(c, "idle", 128, 50) // class 0: 2 slabs, zero traffic (donor)
		// Class 1 (cheap) and class 2 (dear) both under pressure.
		for i := 0; i < 32; i++ {
			c.Set(fmt.Sprintf("cheap%d", i), 100, 0.001, 0, nil)
		}
		for i := 0; i < 16; i++ {
			c.Set(fmt.Sprintf("dear%d", i), 200, 4.0, 0, nil)
		}
		for i := 0; i < 6000; i++ {
			kc := fmt.Sprintf("cheap%d", i%48)
			if _, _, hit := c.Get(kc, 100, 0.001, nil); !hit {
				c.Set(kc, 100, 0.001, 0, nil)
			}
			kd := fmt.Sprintf("dear%d", i%24)
			if _, _, hit := c.Get(kd, 200, 4.0, nil); !hit {
				c.Set(kd, 200, 4.0, 0, nil)
			}
		}
		return c.SnapshotSlabs()
	}
	timeAlloc := run(ObjectiveAvgTime)
	if timeAlloc[2] < 2 {
		t.Fatalf("time objective did not feed the expensive class: %v", timeAlloc)
	}
}
