// Package policy implements the baseline slab-allocation schemes the paper
// compares PAMA against (§II, §IV):
//
//   - Static: the original Memcached — slabs are granted while free memory
//     lasts and never reassigned afterwards; replacement is per-class LRU.
//   - PSA: periodic slab allocation (Carra & Michiardi) — every M misses,
//     move a slab from the class with the lowest request density
//     (requests per slab per window) to the class with the most misses in
//     the window.
//   - Twemcache: Twitter's aggressive random policy — on a miss without
//     free space, a random other class surrenders one slab.
//   - FacebookAge: Facebook's rebalancer (Nishtala et al.) — approximate a
//     global LRU by equalizing per-class LRU-tail ages; when a class's tail
//     is at least 20% younger than the average of the others, move a slab
//     from the class with the oldest tail to the class with the youngest.
//
// All four run a single LRU stack per class (no penalty subclasses, no
// segment tracking, no ghost regions) — exactly the machinery their original
// systems had.
package policy

import (
	"math"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// base provides the no-frills defaults the baselines share.
type base struct{ c *cache.Cache }

func (b *base) SubclassBounds() []float64      { return nil }
func (b *base) Segments() int                  { return 0 }
func (b *base) GhostSegments() int             { return 0 }
func (b *base) Attach(c *cache.Cache)          { b.c = c }
func (b *base) OnHit(*kv.Item, int)            {}
func (b *base) OnMiss(int, int, *kv.Item, int) {}
func (b *base) OnInsert(*kv.Item)              {}
func (b *base) OnEvict(*kv.Item)               {}
func (b *base) OnWindow()                      {}

// Static is original Memcached: no reallocation, per-class LRU replacement.
type Static struct{ base }

// NewStatic returns the static policy.
func NewStatic() *Static { return &Static{} }

// Name implements cache.Policy.
func (*Static) Name() string { return "memcached" }

// MakeRoom implements cache.Policy: replace within the class; if the class
// owns nothing, the SET fails — the original Memcached returns an
// out-of-memory error in that situation.
func (s *Static) MakeRoom(class, _ int) {
	s.c.EvictOneInClass(class)
}

// PSA is periodic slab allocation.
type PSA struct {
	base
	// M is the miss period between relocations (paper §II describes "for
	// every M misses, where M is a predefined constant").
	M uint64

	misses   uint64
	prevReqs []uint64
	// Relocations counts slab moves performed (tests).
	Relocations uint64
}

// NewPSA returns PSA with the given relocation period.
func NewPSA(m uint64) *PSA {
	if m == 0 {
		m = 1000
	}
	return &PSA{M: m}
}

// Name implements cache.Policy.
func (*PSA) Name() string { return "psa" }

// Attach implements cache.Policy.
func (p *PSA) Attach(c *cache.Cache) {
	p.base.Attach(c)
	p.prevReqs = make([]uint64, c.NumClasses())
}

// OnWindow implements cache.Policy: remember the finished window's request
// counts so density is never computed from a nearly empty window.
func (p *PSA) OnWindow() {
	for cl := 0; cl < p.c.NumClasses(); cl++ {
		p.prevReqs[cl] = p.c.WindowReqs(cl)
	}
}

// OnMiss implements cache.Policy: count misses and relocate every M of
// them, from the lowest-density class to the class with the most misses in
// the current window.
func (p *PSA) OnMiss(class, _ int, _ *kv.Item, _ int) {
	p.misses++
	if p.misses < p.M {
		return
	}
	p.misses = 0
	c := p.c
	if c.FreeSlabs() > 0 {
		return // growth phase: nothing to rebalance yet
	}
	// Destination: most window misses (fall back to the missing class).
	dest, destMisses := class, uint64(0)
	for cl := 0; cl < c.NumClasses(); cl++ {
		if m := c.WindowMisses(cl); m > destMisses {
			dest, destMisses = cl, m
		}
	}
	if dest < 0 {
		return
	}
	// Donor: lowest request density among slab owners, excluding dest.
	// Donors keep one slab so no class is starved into unservability.
	donor, donorDensity := -1, math.Inf(1)
	for cl := 0; cl < c.NumClasses(); cl++ {
		if cl == dest || c.Slabs(cl) < 2 {
			continue
		}
		d := float64(p.prevReqs[cl]+c.WindowReqs(cl)) / float64(c.Slabs(cl))
		if d < donorDensity {
			donor, donorDensity = cl, d
		}
	}
	if donor < 0 {
		return
	}
	if err := c.MigrateSlab(donor, 0, dest); err == nil {
		p.Relocations++
	}
}

// MakeRoom implements cache.Policy: relocation is periodic, so the
// in-between misses replace within the class.
func (p *PSA) MakeRoom(class, _ int) {
	p.c.EvictOneInClass(class)
}

// ReportDecisions implements cache.DecisionReporter.
func (p *PSA) ReportDecisions() cache.PolicyDecisions {
	return cache.PolicyDecisions{Migrations: p.Relocations}
}

// Twemcache is Twitter's random-donor policy.
type Twemcache struct {
	base
	state uint64
	// Reassignments counts slab moves (tests).
	Reassignments uint64
}

// NewTwemcache returns the policy with a deterministic seed.
func NewTwemcache(seed uint64) *Twemcache {
	return &Twemcache{state: seed ^ 0x7477656d}
}

// Name implements cache.Policy.
func (*Twemcache) Name() string { return "twemcache" }

// MakeRoom implements cache.Policy: take a slab from a random other class.
func (t *Twemcache) MakeRoom(class, _ int) {
	c := t.c
	// Collect eligible donors; donors keep one slab so no class is
	// starved into unservability.
	var donors []int
	for cl := 0; cl < c.NumClasses(); cl++ {
		if cl != class && c.Slabs(cl) >= 2 {
			donors = append(donors, cl)
		}
	}
	if len(donors) == 0 {
		c.EvictOneInClass(class)
		return
	}
	t.state = kv.Mix64(t.state + 0x9e3779b97f4a7c15)
	donor := donors[t.state%uint64(len(donors))]
	if err := c.MigrateSlab(donor, 0, class); err == nil {
		t.Reassignments++
	} else {
		c.EvictOneInClass(class)
	}
}

// ReportDecisions implements cache.DecisionReporter.
func (t *Twemcache) ReportDecisions() cache.PolicyDecisions {
	return cache.PolicyDecisions{Migrations: t.Reassignments}
}

// FacebookAge is Facebook's LRU-age balancer.
type FacebookAge struct {
	base
	// Moves counts rebalance migrations (tests).
	Moves uint64
}

// NewFacebookAge returns the policy.
func NewFacebookAge() *FacebookAge { return &FacebookAge{} }

// Name implements cache.Policy.
func (*FacebookAge) Name() string { return "facebook-age" }

// MakeRoom implements cache.Policy: rebalancing is a background activity;
// the miss itself replaces within its class.
func (f *FacebookAge) MakeRoom(class, _ int) {
	f.c.EvictOneInClass(class)
}

// OnWindow implements cache.Policy: equalize LRU tail ages.
func (f *FacebookAge) OnWindow() {
	c := f.c
	if c.FreeSlabs() > 0 {
		return
	}
	now := c.Clock()
	youngest, oldest := -1, -1
	var youngAge, oldAge uint64
	var sum uint64
	n := 0
	ages := make([]uint64, c.NumClasses())
	for cl := 0; cl < c.NumClasses(); cl++ {
		tail := c.SubTail(cl, 0)
		if tail == nil || c.Slabs(cl) == 0 {
			ages[cl] = 0
			continue
		}
		age := now - tail.LastAccess
		ages[cl] = age
		sum += age
		n++
		if youngest < 0 || age < youngAge {
			youngest, youngAge = cl, age
		}
		if oldest < 0 || age > oldAge {
			oldest, oldAge = cl, age
		}
	}
	if n < 2 || youngest == oldest {
		return
	}
	avgOthers := float64(sum-youngAge) / float64(n-1)
	if float64(youngAge) < 0.8*avgOthers && c.Slabs(oldest) >= 2 {
		if err := c.MigrateSlab(oldest, 0, youngest); err == nil {
			f.Moves++
		}
	}
}

// ReportDecisions implements cache.DecisionReporter.
func (f *FacebookAge) ReportDecisions() cache.PolicyDecisions {
	return cache.PolicyDecisions{Migrations: f.Moves}
}

// Interface conformance checks.
var (
	_ cache.Policy = (*Static)(nil)
	_ cache.Policy = (*PSA)(nil)
	_ cache.Policy = (*Twemcache)(nil)
	_ cache.Policy = (*FacebookAge)(nil)

	_ cache.DecisionReporter = (*PSA)(nil)
	_ cache.DecisionReporter = (*Twemcache)(nil)
	_ cache.DecisionReporter = (*FacebookAge)(nil)
)
