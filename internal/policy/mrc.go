package policy

import (
	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// MRCObjective selects what the MRC policy optimizes.
type MRCObjective int

const (
	// ObjectiveMissRatio equalizes marginal hit gain (LAMA's hit-ratio
	// target).
	ObjectiveMissRatio MRCObjective = iota
	// ObjectiveAvgTime weights marginal hits by the class's *average*
	// miss time (LAMA's average-request-time target). This is exactly
	// the formulation the paper critiques in §II: averages blur the
	// three-decade per-item penalty spread that PAMA exploits.
	ObjectiveAvgTime
)

// MRC is a miss-ratio-curve-guided allocator in the spirit of LAMA (Hu et
// al., USENIX ATC 2015, discussed in the paper's §II). The original builds
// full per-class miss ratio curves and solves the allocation by dynamic
// programming; this implementation hill-climbs on the curves' endpoints —
// each class's marginal gain (hits its next slab would add, measured on the
// ghost region's receiving segment) against its marginal loss (hits its
// last slab currently provides, measured on the bottom stack segment) —
// which converges to the same local optimum for the concave MRCs cache
// workloads exhibit, without the curve-tracking machinery. DESIGN.md
// records the substitution.
type MRC struct {
	c         *cache.Cache
	objective MRCObjective
	// MaxMovesPerWindow bounds reallocation speed (hill-climb step).
	MaxMovesPerWindow int
	// Moves counts slab migrations performed (tests).
	Moves uint64

	gain, loss []float64 // marginal hit counts, current window
	sumPen     []float64 // penalty sum of observed misses per class
	nPen       []uint64  // miss count per class
}

// NewMRC returns the policy with the given objective.
func NewMRC(obj MRCObjective) *MRC {
	return &MRC{objective: obj, MaxMovesPerWindow: 4}
}

// Name implements cache.Policy.
func (m *MRC) Name() string {
	if m.objective == ObjectiveAvgTime {
		return "mrc-time"
	}
	return "mrc-hit"
}

// SubclassBounds implements cache.Policy: one stack per class, like LAMA.
func (m *MRC) SubclassBounds() []float64 { return nil }

// Segments implements cache.Policy: only the bottom (marginal) segment is
// priced.
func (m *MRC) Segments() int { return 1 }

// GhostSegments implements cache.Policy: only the receiving segment is
// needed for marginal gain.
func (m *MRC) GhostSegments() int { return 1 }

// Attach implements cache.Policy.
func (m *MRC) Attach(c *cache.Cache) {
	m.c = c
	nc := c.NumClasses()
	m.gain = make([]float64, nc)
	m.loss = make([]float64, nc)
	m.sumPen = make([]float64, nc)
	m.nPen = make([]uint64, nc)
}

// OnHit implements cache.Policy: bottom-segment hits are the marginal loss.
func (m *MRC) OnHit(it *kv.Item, seg int) {
	if seg == 0 {
		m.loss[it.Class]++
	}
}

// OnMiss implements cache.Policy: receiving-segment ghost hits are the
// marginal gain; every classed miss updates the class's average miss time.
func (m *MRC) OnMiss(class, _ int, ghost *kv.Item, ghostSeg int) {
	if ghost != nil && ghostSeg == 0 {
		m.gain[ghost.Class]++
	}
	if class >= 0 && ghost != nil {
		m.sumPen[class] += ghost.Penalty
		m.nPen[class]++
	}
}

// OnInsert implements cache.Policy; average miss times also learn from the
// penalties of items entering the class.
func (m *MRC) OnInsert(it *kv.Item) {
	m.sumPen[it.Class] += it.Penalty
	m.nPen[it.Class]++
}

// OnEvict implements cache.Policy.
func (m *MRC) OnEvict(*kv.Item) {}

// avgPen returns the class's average miss time, defaulting to a neutral
// weight before any observation.
func (m *MRC) avgPen(class int) float64 {
	if m.objective == ObjectiveMissRatio || m.nPen[class] == 0 {
		return 1
	}
	return m.sumPen[class] / float64(m.nPen[class])
}

// OnWindow implements cache.Policy: one hill-climb step per window — move
// slabs from the class whose last slab earns least to the class whose next
// slab would earn most, while the trade is profitable.
func (m *MRC) OnWindow() {
	c := m.c
	if c.FreeSlabs() > 0 {
		m.reset()
		return
	}
	for move := 0; move < m.MaxMovesPerWindow; move++ {
		best, bestGain := -1, 0.0
		worst, worstLoss := -1, 0.0
		for cl := 0; cl < c.NumClasses(); cl++ {
			g := m.gain[cl] * m.avgPen(cl)
			if g > bestGain {
				best, bestGain = cl, g
			}
			if c.Slabs(cl) < 2 {
				continue // donors keep one slab
			}
			l := m.loss[cl] * m.avgPen(cl)
			if worst < 0 || l < worstLoss {
				worst, worstLoss = cl, l
			}
		}
		if best < 0 || worst < 0 || best == worst || bestGain <= worstLoss {
			break
		}
		if err := c.MigrateSlab(worst, 0, best); err != nil {
			break
		}
		m.Moves++
		// The moved slab satisfied (part of) the gain and removed the
		// loss signal; damp both so one window's spike cannot drain a
		// donor.
		m.gain[best] /= 2
		m.loss[worst] = 0
	}
	m.reset()
}

func (m *MRC) reset() {
	for i := range m.gain {
		m.gain[i] = 0
		m.loss[i] = 0
	}
}

// MakeRoom implements cache.Policy: reallocation is periodic; in between,
// replace within the class.
func (m *MRC) MakeRoom(class, _ int) {
	m.c.EvictOneInClass(class)
}

var _ cache.Policy = (*MRC)(nil)
