package policy

import (
	"fmt"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

func smallGeom() kv.Geometry { return kv.Geometry{SlabSize: 4096, Base: 64, NumClasses: 4} }

func newCache(t *testing.T, slabs int, pol cache.Policy, window uint64) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		Geometry:   smallGeom(),
		CacheBytes: int64(slabs) * 4096,
		WindowLen:  window,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fill(c *cache.Cache, prefix string, n, size int) {
	for i := 0; i < n; i++ {
		c.Set(fmt.Sprintf("%s%d", prefix, i), size, 0.1, 0, nil)
	}
}

func TestBaselineShapes(t *testing.T) {
	for _, pol := range []cache.Policy{NewStatic(), NewPSA(10), NewTwemcache(1), NewFacebookAge()} {
		if pol.SubclassBounds() != nil || pol.Segments() != 0 || pol.GhostSegments() != 0 {
			t.Fatalf("%s: baselines must run bare stacks", pol.Name())
		}
	}
}

func TestStaticNeverReallocates(t *testing.T) {
	c := newCache(t, 2, NewStatic(), 1<<30)
	fill(c, "a", 64, 50)  // class 0, slab 1
	fill(c, "b", 32, 100) // class 1, slab 2
	// Press hard on class 0: static policy must only evict within class.
	fill(c, "more", 200, 50)
	if c.Slabs(0) != 1 || c.Slabs(1) != 1 {
		t.Fatalf("static moved slabs: %d/%d", c.Slabs(0), c.Slabs(1))
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no within-class evictions under pressure")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticFailsWhenClassEmpty(t *testing.T) {
	c := newCache(t, 1, NewStatic(), 1<<30)
	fill(c, "a", 64, 50)
	if err := c.Set("big", 512, 0.1, 0, nil); err == nil {
		t.Fatal("static policy should fail SET for slabless class when memory is exhausted")
	}
}

func TestPSARelocatesTowardMissingClass(t *testing.T) {
	psa := NewPSA(5)
	c := newCache(t, 3, psa, 1000)
	fill(c, "cold", 128, 50) // class 0, two slabs: never accessed again (low density)
	fill(c, "hot", 32, 100)  // class 1
	// Generate class-1 misses (sizeHint 100 -> class 1) and keep class 1
	// requests high.
	for i := 0; i < 200; i++ {
		c.Get(fmt.Sprintf("hot%d", i%32), 0, 0, nil)
		c.Get(fmt.Sprintf("missing%d", i), 100, 0.1, nil)
	}
	if psa.Relocations == 0 {
		t.Fatal("PSA never relocated")
	}
	if c.Slabs(1) <= 1 {
		t.Fatalf("class 1 did not gain slabs: %d", c.Slabs(1))
	}
	if c.Slabs(0) != 1 {
		t.Fatalf("low-density class 0 should be drained to its final slab, has %d", c.Slabs(0))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPSAQuietDuringGrowth(t *testing.T) {
	psa := NewPSA(2)
	c := newCache(t, 8, psa, 1000)
	fill(c, "a", 10, 50)
	for i := 0; i < 50; i++ {
		c.Get(fmt.Sprintf("nope%d", i), 100, 0.1, nil)
	}
	if psa.Relocations != 0 {
		t.Fatal("PSA relocated while free slabs remained")
	}
	_ = c
}

func TestPSADefaultPeriod(t *testing.T) {
	if NewPSA(0).M != 1000 {
		t.Fatal("zero period should default")
	}
}

func TestTwemcacheGrabsRandomDonor(t *testing.T) {
	tw := NewTwemcache(42)
	c := newCache(t, 4, tw, 1<<30)
	fill(c, "a", 128, 50) // class 0, two slabs: the only eligible donor
	fill(c, "b", 32, 100) // class 1
	fill(c, "c", 16, 200) // class 2
	// Class 3 insert forces a steal; only class 0 can afford it.
	if err := c.Set("big", 512, 0.1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if tw.Reassignments != 1 {
		t.Fatalf("reassignments = %d, want 1", tw.Reassignments)
	}
	if c.Slabs(3) != 1 {
		t.Fatal("class 3 did not receive a slab")
	}
	if c.Slabs(0) != 1 || c.Slabs(1) != 1 || c.Slabs(2) != 1 {
		t.Fatalf("donor accounting wrong: %v", c.SnapshotSlabs())
	}
}

func TestTwemcacheSoleClassEvictsInPlace(t *testing.T) {
	tw := NewTwemcache(1)
	c := newCache(t, 1, tw, 1<<30)
	fill(c, "a", 65, 50)
	if tw.Reassignments != 0 {
		t.Fatal("no donor exists; should evict in place")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestTwemcacheDeterministicSeed(t *testing.T) {
	runOnce := func() []int {
		tw := NewTwemcache(7)
		c := newCache(t, 3, tw, 1<<30)
		fill(c, "a", 64, 50)
		fill(c, "b", 32, 100)
		fill(c, "c", 16, 200)
		for i := 0; i < 3; i++ {
			c.Set(fmt.Sprintf("big%d", i), 512, 0.1, 0, nil)
		}
		return c.SnapshotSlabs()
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestFacebookAgeRebalances(t *testing.T) {
	fb := NewFacebookAge()
	c := newCache(t, 3, fb, 50)
	fill(c, "a", 128, 50) // class 0: two slabs (so it can donate and keep one)
	fill(c, "b", 32, 100) // class 1
	// Keep class 1's tail young (churn it), never touch class 0: class 1
	// tail age stays near zero, class 0's grows -> move slab 0 -> 1.
	for i := 0; i < 500; i++ {
		c.Set(fmt.Sprintf("b%d", i%40), 100, 0.1, 0, nil)
		c.Get(fmt.Sprintf("b%d", (i+20)%40), 0, 0, nil)
	}
	if fb.Moves == 0 {
		t.Fatal("age balancer never moved a slab")
	}
	if c.Slabs(1) <= 1 {
		t.Fatalf("young class did not gain: class1=%d", c.Slabs(1))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacebookAgeIdleWithOneClass(t *testing.T) {
	fb := NewFacebookAge()
	c := newCache(t, 1, fb, 10)
	fill(c, "a", 64, 50)
	for i := 0; i < 100; i++ {
		c.Get(fmt.Sprintf("a%d", i%64), 0, 0, nil)
	}
	if fb.Moves != 0 {
		t.Fatal("single-class cache cannot rebalance")
	}
}

func TestNames(t *testing.T) {
	want := map[string]cache.Policy{
		"memcached":    NewStatic(),
		"psa":          NewPSA(1),
		"twemcache":    NewTwemcache(0),
		"facebook-age": NewFacebookAge(),
	}
	for name, pol := range want {
		if pol.Name() != name {
			t.Errorf("Name() = %q, want %q", pol.Name(), name)
		}
	}
}
