package policy

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// campSeed returns the deterministic oracle seed, overridable for replay:
//
//	PAMA_MODEL_SEED=12345 go test ./internal/policy -run CAMPOracle
func campSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(0xCA3B)
	if s := os.Getenv("PAMA_MODEL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PAMA_MODEL_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("oracle seed %d (replay with PAMA_MODEL_SEED=%d)", seed, seed)
	return seed
}

// refEntry is the naive reference implementation's record: a flat slice
// scanned linearly for the minimum (priority, sequence) on every eviction —
// the O(n) priority queue CAMP's multi-queue structure approximates exactly.
type refEntry struct {
	key  string
	r    float64 // rounded cost/size ratio, fixed at insert (queue identity)
	prio float64
	seq  uint64
}

type refCAMP struct {
	l       float64
	seq     uint64
	entries []refEntry
	round   func(float64) float64
}

func (m *refCAMP) find(key string) int {
	for i := range m.entries {
		if m.entries[i].key == key {
			return i
		}
	}
	return -1
}

func (m *refCAMP) insert(key string, pen float64, size int) {
	if i := m.find(key); i >= 0 {
		m.entries = append(m.entries[:i], m.entries[i+1:]...)
	}
	m.seq++
	r := m.round(pen / float64(size))
	m.entries = append(m.entries, refEntry{key: key, r: r, prio: m.l + r, seq: m.seq})
}

// hit re-inflates the entry's priority with its original rounded ratio —
// CAMP keeps a hit item in its queue, so the queue's r applies, not a
// recomputed one.
func (m *refCAMP) hit(key string) {
	i := m.find(key)
	if i < 0 {
		return
	}
	m.seq++
	m.entries[i].prio = m.l + m.entries[i].r
	m.entries[i].seq = m.seq
}

// evict removes and returns the minimum-(prio, seq) entry, raising the
// inflation clock to its priority.
func (m *refCAMP) evict() string {
	best := 0
	for i := 1; i < len(m.entries); i++ {
		e, b := m.entries[i], m.entries[best]
		if e.prio < b.prio || (e.prio == b.prio && e.seq < b.seq) {
			best = i
		}
	}
	v := m.entries[best]
	if v.prio > m.l {
		m.l = v.prio
	}
	m.entries = append(m.entries[:best], m.entries[best+1:]...)
	return v.key
}

func singleClassCache(t *testing.T, slabs, slot int, pol cache.Policy) *cache.Cache {
	t.Helper()
	g, err := kv.NewTableGeometry(4096, []int{slot})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{
		Geometry:   g,
		CacheBytes: int64(slabs) * 4096,
		WindowLen:  1 << 50,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCAMPShape(t *testing.T) {
	for _, pol := range []cache.Policy{NewCAMP(), NewSizeAware()} {
		if pol.SubclassBounds() != nil || pol.Segments() != 0 || pol.GhostSegments() != 0 {
			t.Fatalf("%s: must run bare stacks", pol.Name())
		}
	}
	if NewCAMP().Name() != "camp" || NewSizeAware().Name() != "size-aware" {
		t.Fatal("policy names drifted")
	}
}

// TestCAMPOracleEvictionOrder drives a single-class cache with a seeded
// stream of inserts, hits, and replaces, and checks that every eviction the
// engine performs matches the victim a naive scan-all priority queue picks
// under the same L + rounded(cost/size) rule. Exact agreement, no slack:
// the multi-queue structure is an optimization, not an approximation.
func TestCAMPOracleEvictionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(campSeed(t)))
	pol := NewCAMP()
	const slabs, slot = 2, 256
	c := singleClassCache(t, slabs, slot, pol)
	capacity := slabs * (4096 / slot)

	ref := &refCAMP{round: pol.RoundRatio}
	live := make(map[string]struct{})
	penalties := []float64{0.001, 0.01, 0.1, 1, 5}

	nextKey := 0
	for op := 0; op < 4000; op++ {
		switch r := rng.Intn(10); {
		case r < 6: // insert a fresh key
			key := fmt.Sprintf("k%d", nextKey)
			nextKey++
			pen := penalties[rng.Intn(len(penalties))]
			size := 1 + rng.Intn(slot)
			if len(live) >= capacity {
				want := ref.evict()
				if err := c.Set(key, size, pen, 0, nil); err != nil {
					t.Fatalf("op %d: set %s: %v", op, key, err)
				}
				if c.Contains(want) {
					t.Fatalf("op %d: reference evicts %q but engine kept it", op, want)
				}
				delete(live, want)
			} else if err := c.Set(key, size, pen, 0, nil); err != nil {
				t.Fatalf("op %d: set %s: %v", op, key, err)
			}
			ref.insert(key, pen, size)
			live[key] = struct{}{}
		case r < 9: // hit a resident key
			if len(live) == 0 {
				continue
			}
			var key string
			n := rng.Intn(len(live))
			for k := range live {
				if n == 0 {
					key = k
					break
				}
				n--
			}
			if _, _, hit := c.Get(key, 0, 0, nil); !hit {
				t.Fatalf("op %d: resident %q missed", op, key)
			}
			if ref.find(key) < 0 {
				t.Fatalf("op %d: %q live but absent from reference", op, key)
			}
			ref.hit(key)
		default: // replace a resident key (never evicts: old slot freed first)
			if len(live) == 0 {
				continue
			}
			var key string
			n := rng.Intn(len(live))
			for k := range live {
				if n == 0 {
					key = k
					break
				}
				n--
			}
			pen := penalties[rng.Intn(len(penalties))]
			size := 1 + rng.Intn(slot)
			if err := c.Set(key, size, pen, 0, nil); err != nil {
				t.Fatalf("op %d: replace %s: %v", op, key, err)
			}
			ref.insert(key, pen, size)
		}
		// The engine and the model must always agree on residency.
		if len(live) != c.Introspect().Items {
			t.Fatalf("op %d: model %d items, engine %d", op, len(live), c.Introspect().Items)
		}
	}
	if c.Stats().FallbackEvicts != 0 {
		t.Fatalf("engine fell back past the policy %d times; oracle invalid", c.Stats().FallbackEvicts)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("trace never evicted; oracle exercised nothing")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// runSkewedCostTrace replays a fixed trace against pol and returns the
// penalty-weighted miss cost: a small set of expensive keys is re-read on a
// cycle while a flood of cheap one-shot keys churns the cache. Plain LRU
// lets the churn wash the expensive set out; a cost-aware policy must not.
func runSkewedCostTrace(t *testing.T, pol cache.Policy) float64 {
	t.Helper()
	const (
		slabs, slot = 2, 256 // capacity 32 items
		hotKeys     = 20
		hotPen      = 5.0
		churnPen    = 0.01
		size        = 100
	)
	c := singleClassCache(t, slabs, slot, pol)
	cost := 0.0
	for i := 0; i < 6000; i++ {
		// One cheap one-shot key per step: always a (cheap) miss.
		churn := fmt.Sprintf("churn%d", i)
		if _, _, hit := c.Get(churn, size, churnPen, nil); !hit {
			cost += churnPen
			if err := c.Set(churn, size, churnPen, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Every other step revisits the expensive working set.
		if i%2 == 0 {
			hot := fmt.Sprintf("hot%d", (i/2)%hotKeys)
			if _, _, hit := c.Get(hot, size, hotPen, nil); !hit {
				cost += hotPen
				if err := c.Set(hot, size, hotPen, 0, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return cost
}

// TestCAMPBeatsLRUOnSkewedCosts is the regression gate from the issue: on a
// skewed-cost trace CAMP's penalty-weighted miss cost must undercut plain
// LRU's by a wide margin, not a rounding error.
func TestCAMPBeatsLRUOnSkewedCosts(t *testing.T) {
	lru := runSkewedCostTrace(t, NewStatic())
	camp := runSkewedCostTrace(t, NewCAMP())
	t.Logf("penalty-weighted miss cost: lru=%.2f camp=%.2f", lru, camp)
	if camp >= 0.5*lru {
		t.Fatalf("camp cost %.2f not < 50%% of lru cost %.2f", camp, lru)
	}
}

// TestCAMPMirrorAcrossRemovals checks the mirror stays consistent through
// delete, replace, expiry, and flush — the RemovalObserver paths.
func TestCAMPMirrorAcrossRemovals(t *testing.T) {
	pol := NewCAMP()
	c := singleClassCache(t, 2, 256, pol)
	for i := 0; i < 20; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 100, 1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete("k3")
	if err := c.Set("k4", 50, 2, 0, nil); err != nil { // replace
		t.Fatal(err)
	}
	if got := len(pol.entries); got != 19 {
		t.Fatalf("mirror has %d entries, want 19", got)
	}
	if _, _, ok := pol.Victim(); !ok {
		t.Fatal("mirror lost its entries")
	}
	c.Flush()
	if len(pol.entries) != 0 || len(pol.queues) != 0 {
		t.Fatalf("flush left %d entries / %d queues in mirror", len(pol.entries), len(pol.queues))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCAMPSurvivesReslab runs CAMP through a live geometry transition: the
// policy is quiesced during the move and re-attached at the end, rebuilding
// its mirror from the engine index. Afterwards evictions must still work.
func TestCAMPSurvivesReslab(t *testing.T) {
	pol := NewCAMP()
	g, err := kv.NewTableGeometry(4096, []int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{Geometry: g, CacheBytes: 8 * 4096, WindowLen: 1 << 50}, pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 100, float64(1+i%5), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	target, err := kv.NewTableGeometry(4096, []int{128, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BeginReslab(target); err != nil {
		t.Fatal(err)
	}
	for i := 0; c.ReslabActive(); i++ {
		if i > 1000 {
			t.Fatal("transition did not converge")
		}
		c.ReslabStep(16)
	}
	if got := len(pol.entries); got != 60 {
		t.Fatalf("rebuilt mirror has %d entries, want 60", got)
	}
	// Press until evictions happen; CAMP must drive them without fallback.
	for i := 0; i < 400; i++ {
		if err := c.Set(fmt.Sprintf("p%d", i), 100, 1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions under pressure after reslab")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSizeAwareMigratesFromLowUtilityClass: a cold large class should
// donate before a small class, even when the small class was filled first.
func TestSizeAwareMigratesFromLowUtilityClass(t *testing.T) {
	pol := NewSizeAware()
	c := newCache(t, 4, pol, 1<<30)
	fill(c, "small", 64, 50) // class 0: one slab of 64 slots
	fill(c, "big", 24, 400)  // class 3: three slabs of 8 slots
	// Keep the small class warm.
	for r := 0; r < 5; r++ {
		for i := 0; i < 64; i++ {
			c.Get(fmt.Sprintf("small%d", i), 0, 0, nil)
		}
	}
	// Class 1 owns nothing and no slabs are free: MakeRoom must pick the
	// cold large class (lowest frequency per byte) as donor.
	if err := c.Set("mid", 100, 0.1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if pol.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", pol.Migrations)
	}
	if c.Slabs(3) != 2 || c.Slabs(0) != 1 || c.Slabs(1) != 1 {
		t.Fatalf("wrong donor: slabs = %v", c.SnapshotSlabs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSizeAwareFrequencyOverridesSize: when the large class is hot enough,
// its frequency-per-byte exceeds a cold small class and the small class
// donates instead — size alone does not decide.
func TestSizeAwareFrequencyOverridesSize(t *testing.T) {
	pol := NewSizeAware()
	c := newCache(t, 4, pol, 1<<30)
	fill(c, "small", 128, 50) // class 0: two slabs, never touched again
	fill(c, "big", 16, 400)   // class 3: two slabs
	// Hammer the large items: tail frequency must clear the 1/slot gap
	// against the cold small class ((f+1)/512 > 2/64 needs f > 15).
	for r := 0; r < 25; r++ {
		for i := 0; i < 16; i++ {
			c.Get(fmt.Sprintf("big%d", i), 0, 0, nil)
		}
	}
	if err := c.Set("mid", 100, 0.1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if pol.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", pol.Migrations)
	}
	if c.Slabs(0) != 1 || c.Slabs(3) != 2 {
		t.Fatalf("hot large class should not donate: slabs = %v", c.SnapshotSlabs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSizeAwareEvictsInPlaceWithoutDonors: with a single class and no
// spare slabs the policy must evict within the class, not stall.
func TestSizeAwareEvictsInPlaceWithoutDonors(t *testing.T) {
	pol := NewSizeAware()
	c := singleClassCache(t, 1, 256, pol)
	for i := 0; i < 20; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 100, 0.1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no in-place evictions")
	}
	if pol.Migrations != 0 {
		t.Fatal("single class cannot migrate")
	}
}
