package policy

import (
	"fmt"
	"testing"

	"pamakv/internal/cache"
)

func newLAMACache(t *testing.T, slabs int, obj MRCObjective, window uint64) (*cache.Cache, *LAMA) {
	t.Helper()
	l := NewLAMA(obj)
	l.SolveEvery = 1
	c, err := cache.New(cache.Config{
		Geometry:   smallGeom(),
		CacheBytes: int64(slabs) * 4096,
		WindowLen:  window,
	}, l)
	if err != nil {
		t.Fatal(err)
	}
	return c, l
}

func TestLAMAShapes(t *testing.T) {
	l := NewLAMA(ObjectiveMissRatio)
	if l.Name() != "lama-hit" || l.Segments() != 0 || l.GhostSegments() != 0 || l.SubclassBounds() != nil {
		t.Fatalf("lama shape wrong: %s", l.Name())
	}
	if NewLAMA(ObjectiveAvgTime).Name() != "lama-time" {
		t.Fatal("time objective name")
	}
}

func TestLAMAReallocatesByCurve(t *testing.T) {
	c, l := newLAMACache(t, 3, ObjectiveMissRatio, 500)
	// Class 0: two slabs, working set of 32 keys (needs half a slab) —
	// its hit curve saturates at 1 slab.
	fill(c, "small", 128, 50)
	// Class 1: one slab (32 slots), working set of 64 keys cycled so the
	// curve keeps rising past its allocation.
	for i := 0; i < 12000; i++ {
		ks := fmt.Sprintf("small%d", i%32)
		if _, _, hit := c.Get(ks, 50, 0.1, nil); !hit {
			c.Set(ks, 50, 0.1, 0, nil)
		}
		kh := fmt.Sprintf("hot%d", i%64)
		if _, _, hit := c.Get(kh, 100, 0.1, nil); !hit {
			c.Set(kh, 100, 0.1, 0, nil)
		}
	}
	if l.Moves == 0 {
		t.Fatal("LAMA never migrated")
	}
	if c.Slabs(1) < 2 {
		t.Fatalf("curve-hungry class did not gain: %v", c.SnapshotSlabs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLAMAQuietDuringGrowth(t *testing.T) {
	c, l := newLAMACache(t, 8, ObjectiveMissRatio, 100)
	fill(c, "a", 64, 50)
	for i := 0; i < 1000; i++ {
		c.Get(fmt.Sprintf("a%d", i%64), 0, 0, nil)
	}
	if l.Moves != 0 {
		t.Fatal("LAMA moved slabs while free slabs remained")
	}
}

func TestLAMATimeObjectiveWeighting(t *testing.T) {
	// Two classes with equally rising curves; expensive misses on class 2
	// must attract the allocation under the time objective.
	c, l := newLAMACache(t, 4, ObjectiveAvgTime, 600)
	fill(c, "idle", 128, 50) // class 0: 2 slabs donor
	for i := 0; i < 10000; i++ {
		kc := fmt.Sprintf("cheap%d", i%64)
		if _, _, hit := c.Get(kc, 100, 0.001, nil); !hit {
			c.Set(kc, 100, 0.001, 0, nil)
		}
		kd := fmt.Sprintf("dear%d", i%32)
		if _, _, hit := c.Get(kd, 200, 4.0, nil); !hit {
			c.Set(kd, 200, 4.0, 0, nil)
		}
	}
	if l.Moves == 0 {
		t.Fatal("LAMA idle")
	}
	if c.Slabs(2) < 2 {
		t.Fatalf("expensive class under-allocated: %v", c.SnapshotSlabs())
	}
}

func TestLAMASolveCadence(t *testing.T) {
	l := NewLAMA(ObjectiveMissRatio)
	l.SolveEvery = 3
	c, err := cache.New(cache.Config{
		Geometry:   smallGeom(),
		CacheBytes: 2 * 4096,
		WindowLen:  10,
	}, l)
	if err != nil {
		t.Fatal(err)
	}
	fill(c, "a", 64, 50)
	fill(c, "b", 32, 100)
	// Windows fire every 10 accesses; with SolveEvery=3 the solver may
	// only act on every third. This mainly asserts no panics or moves
	// with a 2-slab cache (donors must keep one slab).
	for i := 0; i < 500; i++ {
		c.Get(fmt.Sprintf("b%d", i%32), 0, 0, nil)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
