package policy

// SizeAware — after "Lightweight Robust Size Aware Cache Management"
// (Einziger et al., PAPERS.md) — chooses eviction victims by estimated
// frequency per byte rather than recency alone. A small decaying
// count-min sketch tracks access frequency per key hash; when a class
// needs room the policy scores every class tail by freq/slot-size and
// takes memory from the class whose tail buys the least utility per
// byte. Large cold items are evicted ahead of small warm ones even when
// they were touched more recently, which is the failure mode plain LRU
// exhibits on mixed-size traces.

import (
	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

const (
	sketchRows  = 4
	sketchWidth = 2048 // power of two; masks instead of mod
	// sketchDecayEvery halves all counters after this many observations,
	// keeping estimates fresh on shifting workloads (the "robust" part).
	sketchDecayEvery = 1 << 14
)

// SizeAware is the frequency-per-byte eviction baseline.
type SizeAware struct {
	c      *cache.Cache
	sketch [sketchRows][sketchWidth]uint16
	obs    int

	// Migrations counts cross-class slab moves (tests/introspection).
	Migrations uint64
}

// NewSizeAware returns the policy.
func NewSizeAware() *SizeAware { return &SizeAware{} }

// Name implements cache.Policy.
func (*SizeAware) Name() string { return "size-aware" }

// SubclassBounds implements cache.Policy: one stack per class.
func (*SizeAware) SubclassBounds() []float64 { return nil }

// Segments implements cache.Policy.
func (*SizeAware) Segments() int { return 0 }

// GhostSegments implements cache.Policy.
func (*SizeAware) GhostSegments() int { return 0 }

// Attach implements cache.Policy.
func (p *SizeAware) Attach(c *cache.Cache) { p.c = c }

// sketchSlot derives row r's counter index from the key hash by remixing
// with a distinct odd constant per row (independent-enough hash functions
// without rehashing the key).
func sketchSlot(h uint64, r int) int {
	h *= 0x9e3779b97f4a7c15 + uint64(r)<<1 // keep the multiplier odd
	return int(h>>48) & (sketchWidth - 1)
}

func (p *SizeAware) observe(h uint64) {
	for r := 0; r < sketchRows; r++ {
		s := &p.sketch[r][sketchSlot(h, r)]
		if *s < ^uint16(0) {
			*s++
		}
	}
	p.obs++
	if p.obs >= sketchDecayEvery {
		p.obs = 0
		for r := range p.sketch {
			for i := range p.sketch[r] {
				p.sketch[r][i] >>= 1
			}
		}
	}
}

// freq is the count-min estimate for a key hash.
func (p *SizeAware) freq(h uint64) uint16 {
	min := ^uint16(0)
	for r := 0; r < sketchRows; r++ {
		if v := p.sketch[r][sketchSlot(h, r)]; v < min {
			min = v
		}
	}
	return min
}

// OnHit implements cache.Policy.
func (p *SizeAware) OnHit(it *kv.Item, _ int) { p.observe(it.Hash) }

// OnInsert implements cache.Policy.
func (p *SizeAware) OnInsert(it *kv.Item) { p.observe(it.Hash) }

// OnMiss implements cache.Policy.
func (*SizeAware) OnMiss(int, int, *kv.Item, int) {}

// OnEvict implements cache.Policy.
func (*SizeAware) OnEvict(*kv.Item) {}

// OnWindow implements cache.Policy.
func (*SizeAware) OnWindow() {}

// MakeRoom implements cache.Policy: score every class tail by estimated
// frequency per slot byte and take memory where that score is lowest.
// Donor classes keep at least two slabs so no class is starved outright.
func (p *SizeAware) MakeRoom(class, _ int) {
	c := p.c
	g := c.Geometry()
	best, bestScore := -1, 0.0
	for cl := 0; cl < c.NumClasses(); cl++ {
		if cl != class && c.Slabs(cl) < 2 {
			continue
		}
		tail := c.SubTail(cl, 0)
		if tail == nil {
			continue
		}
		// +1 so brand-new (never-counted) tails still rank by size.
		score := float64(p.freq(tail.Hash)+1) / float64(g.SlotSize(cl))
		if best < 0 || score < bestScore {
			best, bestScore = cl, score
		}
	}
	if best < 0 || best == class {
		c.EvictOneInClass(class)
		return
	}
	if err := c.MigrateSlab(best, 0, class); err != nil {
		c.EvictOneInClass(class)
		return
	}
	p.Migrations++
}

// ReportDecisions implements cache.DecisionReporter.
func (p *SizeAware) ReportDecisions() cache.PolicyDecisions {
	return cache.PolicyDecisions{Migrations: p.Migrations}
}

// Interface conformance checks.
var (
	_ cache.Policy           = (*SizeAware)(nil)
	_ cache.DecisionReporter = (*SizeAware)(nil)
)
