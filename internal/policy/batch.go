package policy

import "pamakv/internal/cache"

// Batched drain entry points (cache.BatchRecorder) for the baselines whose
// OnHit does real work. Each must be observably equivalent to calling OnHit
// per entry in order — they exist so the engine's batched read path hands a
// whole drain pass over in one call instead of one virtual dispatch per hit.
//
// Note these live on the concrete policy types, NOT on the shared base:
// a RecordBatch method on base would statically bind base's no-op OnHit and
// silently swallow every subclass's override. Policies not listed here
// (PSA, Twemcache, FacebookAge track hits through engine window counters
// and LastAccess, with no-op OnHit) fall back to the engine's per-hit loop.

// RecordBatch implements cache.BatchRecorder: Static's OnHit is a no-op
// (the engine already moved the item to MRU), so the batch is too — the
// method's value is skipping the per-hit interface dispatch entirely.
func (*Static) RecordBatch([]cache.BatchHit) {}

// RecordBatch implements cache.BatchRecorder for CAMP: each hit re-queues
// the mirror entry with a freshly inflated priority, in drain order, exactly
// as consecutive OnHit calls would.
func (p *CAMP) RecordBatch(hits []cache.BatchHit) {
	for i := range hits {
		p.OnHit(hits[i].It, hits[i].Seg)
	}
}

// RecordBatch implements cache.BatchRecorder for SizeAware: each hit feeds
// the count-min sketch in drain order (the sketch's periodic decay makes
// application order observable, so per-entry replay is required for
// exactness).
func (p *SizeAware) RecordBatch(hits []cache.BatchHit) {
	for i := range hits {
		p.observe(hits[i].It.Hash)
	}
}
