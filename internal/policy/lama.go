package policy

import (
	"pamakv/internal/cache"
	"pamakv/internal/kv"
	"pamakv/internal/mrc"
)

// LAMA reproduces the locality-aware memory allocation of Hu et al.
// (USENIX ATC 2015) that the paper discusses in §II: per-class miss ratio
// curves drive a periodic re-solve of the whole allocation. Each class runs
// a shadow stack (package mrc) deeper than its current allocation; every
// few windows the hit curves are waterfilled against the slab budget
// (optimal for concave curves — LAMA's dynamic program in the regime cache
// curves occupy) and slabs migrate toward the solution.
//
// The objective mirrors LAMA's two variants: hit ratio, or average request
// time, where a class's curve is weighted by its *average* miss time. The
// paper's critique — "average service time … may not be sufficiently
// representative … PAMA uses actual miss penalties associated with each
// slab" — is exactly the difference between this policy and core.PAMA, and
// BenchmarkExtensionMRCvsPAMA measures it.
type LAMA struct {
	c         *cache.Cache
	objective MRCObjective
	// ExtraDepth is how many slabs beyond the whole budget each shadow
	// can see (cap on curve knowledge).
	ExtraDepth int
	// SolveEvery re-solves the allocation every this many windows.
	SolveEvery int
	// MaxMovesPerSolve bounds migration speed toward the solution.
	MaxMovesPerSolve int
	// Moves counts slab migrations performed (tests).
	Moves uint64

	trackers []*mrc.Tracker
	sumPen   []float64
	nPen     []uint64
	windows  int
}

// NewLAMA returns the policy with the given objective.
func NewLAMA(obj MRCObjective) *LAMA {
	return &LAMA{
		objective:        obj,
		ExtraDepth:       8,
		SolveEvery:       2,
		MaxMovesPerSolve: 8,
	}
}

// Name implements cache.Policy.
func (l *LAMA) Name() string {
	if l.objective == ObjectiveAvgTime {
		return "lama-time"
	}
	return "lama-hit"
}

// SubclassBounds implements cache.Policy: LAMA runs one stack per class.
func (l *LAMA) SubclassBounds() []float64 { return nil }

// Segments implements cache.Policy: LAMA does not price bottom segments.
func (l *LAMA) Segments() int { return 0 }

// GhostSegments implements cache.Policy: the shadow stacks subsume ghosts.
func (l *LAMA) GhostSegments() int { return 0 }

// Attach implements cache.Policy.
func (l *LAMA) Attach(c *cache.Cache) {
	l.c = c
	nc := c.NumClasses()
	l.trackers = make([]*mrc.Tracker, nc)
	l.sumPen = make([]float64, nc)
	l.nPen = make([]uint64, nc)
	// Shadow depth: enough to see the value of any feasible allocation
	// (the whole budget could in principle go to one class).
	total := c.TotalSlabsBudget()
	for cl := 0; cl < nc; cl++ {
		l.trackers[cl] = mrc.NewTracker(c.SlotsPerSlab(cl), total+l.ExtraDepth)
	}
}

// OnHit implements cache.Policy.
func (l *LAMA) OnHit(it *kv.Item, _ int) {
	l.trackers[it.Class].Access(it.Key, it.Hash)
}

// OnMiss implements cache.Policy: misses contribute to the class's average
// miss time (the time objective's weight).
func (l *LAMA) OnMiss(class, _ int, ghost *kv.Item, _ int) {
	if class >= 0 && ghost != nil {
		l.sumPen[class] += ghost.Penalty
		l.nPen[class]++
	}
}

// OnInsert implements cache.Policy: a miss refill (or explicit SET) is an
// access at the key's reuse distance.
func (l *LAMA) OnInsert(it *kv.Item) {
	l.trackers[it.Class].Access(it.Key, it.Hash)
	l.sumPen[it.Class] += it.Penalty
	l.nPen[it.Class]++
}

// OnEvict implements cache.Policy.
func (l *LAMA) OnEvict(*kv.Item) {}

// MakeRoom implements cache.Policy: between solves, replace within class.
func (l *LAMA) MakeRoom(class, _ int) {
	l.c.EvictOneInClass(class)
}

// OnWindow implements cache.Policy: every SolveEvery windows, waterfill the
// hit curves and migrate toward the solution.
func (l *LAMA) OnWindow() {
	l.windows++
	if l.windows%l.SolveEvery != 0 {
		return
	}
	c := l.c
	if c.FreeSlabs() > 0 {
		return
	}
	nc := c.NumClasses()
	curves := make([][]float64, nc)
	weights := make([]float64, nc)
	mins := make([]int, nc)
	active := false
	for cl := 0; cl < nc; cl++ {
		curves[cl] = l.trackers[cl].HitCurve()
		weights[cl] = 1
		if l.objective == ObjectiveAvgTime && l.nPen[cl] > 0 {
			weights[cl] = l.sumPen[cl] / float64(l.nPen[cl])
		}
		if l.trackers[cl].Len() > 0 {
			// Classes with live traffic must stay servable; idle
			// classes may be drained entirely.
			mins[cl] = 1
			active = true
		}
	}
	if !active {
		return
	}
	target := mrc.WaterfillMin(curves, weights, c.TotalSlabsBudget(), mins)
	// Migrate toward the target, largest-deficit receiver first, from the
	// largest-surplus donor (donors keep one slab).
	for move := 0; move < l.MaxMovesPerSolve; move++ {
		recv, worstDef := -1, 0
		donor, worstSur := -1, 0
		for cl := 0; cl < nc; cl++ {
			d := target[cl] - c.Slabs(cl)
			if d > worstDef {
				recv, worstDef = cl, d
			}
			if s := -d; s > worstSur && c.Slabs(cl) >= 2 {
				donor, worstSur = cl, s
			}
		}
		if recv < 0 || donor < 0 || recv == donor {
			break
		}
		if err := c.MigrateSlab(donor, 0, recv); err != nil {
			break
		}
		l.Moves++
	}
	for cl := 0; cl < nc; cl++ {
		l.trackers[cl].ResetWindow()
	}
}

var _ cache.Policy = (*LAMA)(nil)
