// Package kv defines the key-value item representation shared by the cache
// engine and its substrates, together with the slab-class size geometry used
// by Memcached-style allocators.
//
// Items carry intrusive links for the LRU lists (package lru) and the hash
// index (package hashtable) so that a resident item costs exactly one
// allocation and every list/index operation is pointer surgery, never a map
// rehash or a container allocation. The fields are exported because the
// sibling internal packages splice them directly; outside code never sees a
// *kv.Item.
package kv

import "fmt"

// Op identifies a request operation in traces and workloads.
type Op uint8

const (
	// Get retrieves an item.
	Get Op = iota
	// Set inserts or replaces an item.
	Set
	// Delete removes an item.
	Delete
)

// String returns the Memcached-style lower-case name of the operation.
func (o Op) String() string {
	switch o {
	case Get:
		return "get"
	case Set:
		return "set"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Item is one cached object: key, logical size, last observed miss penalty,
// and the intrusive hooks that place it in exactly one LRU stack and one hash
// chain. Ghost entries (evicted items remembered for incoming-value
// estimation) reuse the same struct with Ghost set and Value nil.
type Item struct {
	// Key is the full key string. For simulator-generated workloads it is
	// the 8-byte big-endian encoding of a numeric key id.
	Key string
	// Hash caches the 64-bit hash of Key used by the index and the Bloom
	// filters; it is computed once at insertion.
	Hash uint64
	// Size is the item's footprint in bytes charged against its slot: key
	// length + value length + per-item metadata overhead.
	Size int
	// Penalty is the most recently observed miss penalty for this key, in
	// seconds. It selects the penalty subclass under PAMA and prices the
	// segment an access lands in.
	Penalty float64
	// Value holds the item bytes when the cache stores values; nil in
	// metadata-only (simulation) mode.
	Value []byte
	// Flags carries opaque client flags (Memcached protocol compatibility).
	Flags uint32

	// Class and Sub locate the LRU stack holding the item.
	Class, Sub int
	// Ghost marks an entry in a ghost region rather than a resident item.
	Ghost bool
	// LastAccess is the cache access-clock value of the latest touch.
	LastAccess uint64
	// ExpireAt is the unix-seconds expiry deadline; 0 means no expiry.
	// Expiry is lazy: the engine reaps an expired item when a GET finds
	// it, as Memcached does.
	ExpireAt int64
	// Seq is the rank-ring sequence assigned by the segment tracker; it is
	// owned by package rank.
	Seq uint64
	// CAS is the compare-and-set token, changed on every store of the
	// key (Memcached cas semantics).
	CAS uint64

	// Prev and Next are the intrusive LRU links (owned by package lru).
	Prev, Next *Item
	// HNext is the intrusive hash-chain link (owned by package hashtable).
	HNext *Item
}

// Reset clears an item for reuse from a free pool, keeping only the backing
// Value capacity.
func (it *Item) Reset() {
	v := it.Value
	*it = Item{}
	if v != nil {
		it.Value = v[:0]
	}
}

// Geometry describes the slab-class layout: class i holds items of size at
// most Base << i, up to NumClasses classes, each slab being SlabSize bytes.
// The zero Geometry is not valid; use DefaultGeometry or fill all fields.
type Geometry struct {
	// SlabSize is the size of one slab in bytes (Memcached default 1 MiB).
	SlabSize int
	// Base is the slot size of class 0 in bytes (paper: 64).
	Base int
	// NumClasses is the number of size classes. The largest class slot is
	// Base << (NumClasses-1), which must not exceed SlabSize.
	NumClasses int
}

// DefaultGeometry mirrors the paper's setup: 1 MiB slabs, class 0 at 64 B,
// doubling per class, 15 classes (largest slot 1 MiB).
func DefaultGeometry() Geometry {
	return Geometry{SlabSize: 1 << 20, Base: 64, NumClasses: 15}
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.SlabSize <= 0:
		return fmt.Errorf("kv: slab size %d must be positive", g.SlabSize)
	case g.Base <= 0:
		return fmt.Errorf("kv: base slot size %d must be positive", g.Base)
	case g.NumClasses <= 0:
		return fmt.Errorf("kv: class count %d must be positive", g.NumClasses)
	case g.SlotSize(g.NumClasses-1) > g.SlabSize:
		return fmt.Errorf("kv: largest slot %d exceeds slab size %d",
			g.SlotSize(g.NumClasses-1), g.SlabSize)
	}
	return nil
}

// SlotSize returns the slot size of class c in bytes.
func (g Geometry) SlotSize(c int) int { return g.Base << uint(c) }

// SlotsPerSlab returns how many slots one slab yields in class c.
func (g Geometry) SlotsPerSlab(c int) int { return g.SlabSize / g.SlotSize(c) }

// MaxItemSize returns the largest cacheable item size.
func (g Geometry) MaxItemSize() int { return g.SlotSize(g.NumClasses - 1) }

// ClassFor returns the smallest class whose slot fits size bytes, or -1 if
// the item is too large to cache.
func (g Geometry) ClassFor(size int) int {
	if size <= 0 {
		size = 1
	}
	s := g.Base
	for c := 0; c < g.NumClasses; c++ {
		if size <= s {
			return c
		}
		s <<= 1
	}
	return -1
}
