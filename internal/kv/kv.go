// Package kv defines the key-value item representation shared by the cache
// engine and its substrates, together with the slab-class size geometry used
// by Memcached-style allocators.
//
// Items carry intrusive links for the LRU lists (package lru) and the hash
// index (package hashtable) so that a resident item costs exactly one
// allocation and every list/index operation is pointer surgery, never a map
// rehash or a container allocation. The fields are exported because the
// sibling internal packages splice them directly; outside code never sees a
// *kv.Item.
package kv

import "fmt"

// Op identifies a request operation in traces and workloads.
type Op uint8

const (
	// Get retrieves an item.
	Get Op = iota
	// Set inserts or replaces an item.
	Set
	// Delete removes an item.
	Delete
)

// String returns the Memcached-style lower-case name of the operation.
func (o Op) String() string {
	switch o {
	case Get:
		return "get"
	case Set:
		return "set"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Item is one cached object: key, logical size, last observed miss penalty,
// and the intrusive hooks that place it in exactly one LRU stack and one hash
// chain. Ghost entries (evicted items remembered for incoming-value
// estimation) reuse the same struct with Ghost set and Value nil.
type Item struct {
	// Key is the full key string. For simulator-generated workloads it is
	// the 8-byte big-endian encoding of a numeric key id.
	Key string
	// Hash caches the 64-bit hash of Key used by the index and the Bloom
	// filters; it is computed once at insertion.
	Hash uint64
	// Size is the item's footprint in bytes charged against its slot: key
	// length + value length + per-item metadata overhead.
	Size int
	// Penalty is the most recently observed miss penalty for this key, in
	// seconds. It selects the penalty subclass under PAMA and prices the
	// segment an access lands in.
	Penalty float64
	// Value holds the item bytes when the cache stores values; nil in
	// metadata-only (simulation) mode.
	Value []byte
	// Flags carries opaque client flags (Memcached protocol compatibility).
	Flags uint32
	// Tenant is the id of the tenant that owns the item (0 = default
	// tenant). Stamped by the engine from its Config; package tenant uses
	// it to audit that a tenant's engine only ever holds that tenant's
	// items.
	Tenant int32

	// Class and Sub locate the LRU stack holding the item.
	Class, Sub int
	// Ghost marks an entry in a ghost region rather than a resident item.
	Ghost bool
	// LastAccess is the cache access-clock value of the latest touch.
	LastAccess uint64
	// ExpireAt is the unix-seconds expiry deadline; 0 means no expiry.
	// Expiry is lazy: the engine reaps an expired item when a GET finds
	// it, as Memcached does.
	ExpireAt int64
	// Seq is the rank-ring sequence assigned by the segment tracker; it is
	// owned by package rank. Policies that disable segment tracking
	// (Segments() == 0) may repurpose it as per-item scratch (policy.CAMP
	// stores its insertion-time clock here).
	Seq uint64
	// Gen is the cache geometry generation the item was slotted under;
	// during a live re-slab transition it distinguishes items still in the
	// outgoing era from items already in the target era. Owned by package
	// cache.
	Gen uint32
	// CAS is the compare-and-set token, changed on every store of the
	// key (Memcached cas semantics).
	CAS uint64

	// Prev and Next are the intrusive LRU links (owned by package lru).
	Prev, Next *Item
	// HNext is the intrusive hash-chain link (owned by package hashtable).
	HNext *Item
}

// Reset clears an item for reuse from a free pool, keeping only the backing
// Value capacity.
func (it *Item) Reset() {
	v := it.Value
	*it = Item{}
	if v != nil {
		it.Value = v[:0]
	}
}

// Geometry describes the slab-class layout. In the default (power-of-two)
// law, class i holds items of size at most Base << i; when Slots is set it
// overrides the law with an arbitrary strictly increasing slot-size table
// (learned geometries, package geom). Either way there are NumClasses
// classes and each slab is SlabSize bytes.
//
// The zero Geometry is not valid; use DefaultGeometry, NewTableGeometry, or
// fill all fields. Geometry contains a slice, so compare with Equal/IsZero,
// never ==.
type Geometry struct {
	// SlabSize is the size of one slab in bytes (Memcached default 1 MiB).
	SlabSize int
	// Base is the slot size of class 0 in bytes (paper: 64). Ignored when
	// Slots is set.
	Base int
	// NumClasses is the number of size classes. Under the power-of-two law
	// the largest class slot is Base << (NumClasses-1), which must not
	// exceed SlabSize; with Slots set, NumClasses must equal len(Slots).
	NumClasses int
	// Slots, when non-nil, is the slot size of each class: strictly
	// increasing, with Slots[len-1] <= SlabSize. nil selects the
	// power-of-two law (all seed behavior).
	Slots []int
}

// DefaultGeometry mirrors the paper's setup: 1 MiB slabs, class 0 at 64 B,
// doubling per class, 15 classes (largest slot 1 MiB).
func DefaultGeometry() Geometry {
	return Geometry{SlabSize: 1 << 20, Base: 64, NumClasses: 15}
}

// NewTableGeometry builds a table-driven geometry from an explicit slot-size
// list, validating it.
func NewTableGeometry(slabSize int, slots []int) (Geometry, error) {
	g := Geometry{
		SlabSize:   slabSize,
		NumClasses: len(slots),
		Slots:      append([]int(nil), slots...),
	}
	if len(slots) > 0 {
		g.Base = slots[0]
	}
	if err := g.Validate(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}

// IsZero reports whether g is the zero Geometry (meaning "use the default").
func (g Geometry) IsZero() bool {
	return g.SlabSize == 0 && g.Base == 0 && g.NumClasses == 0 && g.Slots == nil
}

// Equal reports whether two geometries describe the same layout: same slab
// size, same class count, and the same slot size for every class (a table
// geometry equals a power-of-two geometry when the tables coincide).
func (g Geometry) Equal(o Geometry) bool {
	if g.SlabSize != o.SlabSize || g.NumClasses != o.NumClasses {
		return false
	}
	for c := 0; c < g.NumClasses; c++ {
		if g.SlotSize(c) != o.SlotSize(c) {
			return false
		}
	}
	return true
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.SlabSize <= 0:
		return fmt.Errorf("kv: slab size %d must be positive", g.SlabSize)
	case g.NumClasses <= 0:
		return fmt.Errorf("kv: class count %d must be positive", g.NumClasses)
	}
	if g.Slots != nil {
		if len(g.Slots) != g.NumClasses {
			return fmt.Errorf("kv: slot table holds %d entries for %d classes",
				len(g.Slots), g.NumClasses)
		}
		prev := 0
		for c, s := range g.Slots {
			if s <= prev {
				return fmt.Errorf("kv: slot table not strictly increasing at class %d (%d after %d)",
					c, s, prev)
			}
			prev = s
		}
		if g.Slots[len(g.Slots)-1] > g.SlabSize {
			return fmt.Errorf("kv: largest slot %d exceeds slab size %d",
				g.Slots[len(g.Slots)-1], g.SlabSize)
		}
		return nil
	}
	switch {
	case g.Base <= 0:
		return fmt.Errorf("kv: base slot size %d must be positive", g.Base)
	case g.NumClasses > 62:
		return fmt.Errorf("kv: class count %d overflows the power-of-two law", g.NumClasses)
	case g.SlotSize(g.NumClasses-1) > g.SlabSize:
		return fmt.Errorf("kv: largest slot %d exceeds slab size %d",
			g.SlotSize(g.NumClasses-1), g.SlabSize)
	}
	return nil
}

// SlotSize returns the slot size of class c in bytes.
func (g Geometry) SlotSize(c int) int {
	if g.Slots != nil {
		return g.Slots[c]
	}
	return g.Base << uint(c)
}

// SlotsPerSlab returns how many slots one slab yields in class c.
func (g Geometry) SlotsPerSlab(c int) int { return g.SlabSize / g.SlotSize(c) }

// MaxItemSize returns the largest cacheable item size.
func (g Geometry) MaxItemSize() int { return g.SlotSize(g.NumClasses - 1) }

// ClassFor returns the smallest class whose slot fits size bytes, or -1 if
// the item is too large to cache.
func (g Geometry) ClassFor(size int) int {
	if size <= 0 {
		size = 1
	}
	if g.Slots != nil {
		if size > g.Slots[len(g.Slots)-1] {
			return -1
		}
		// Binary search for the first slot >= size.
		lo, hi := 0, len(g.Slots)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if size <= g.Slots[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	s := g.Base
	for c := 0; c < g.NumClasses; c++ {
		if size <= s {
			return c
		}
		s <<= 1
	}
	return -1
}
