package kv

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryValid(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if got := g.MaxItemSize(); got != 1<<20 {
		t.Fatalf("MaxItemSize = %d, want %d", got, 1<<20)
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	cases := []Geometry{
		{SlabSize: 0, Base: 64, NumClasses: 4},
		{SlabSize: 1 << 20, Base: 0, NumClasses: 4},
		{SlabSize: 1 << 20, Base: 64, NumClasses: 0},
		{SlabSize: 1 << 10, Base: 64, NumClasses: 6}, // largest slot 2 KiB > 1 KiB slab
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
}

func TestClassForBoundaries(t *testing.T) {
	g := DefaultGeometry()
	cases := []struct {
		size, want int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, 14}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := g.ClassFor(c.size); got != c.want {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestClassForFitsSlot(t *testing.T) {
	g := DefaultGeometry()
	f := func(size uint32) bool {
		s := int(size % uint32(g.MaxItemSize()+2))
		c := g.ClassFor(s)
		if s > g.MaxItemSize() {
			return c == -1
		}
		if c < 0 || c >= g.NumClasses {
			return false
		}
		if s > g.SlotSize(c) {
			return false // item must fit its slot
		}
		// Must be the smallest fitting class.
		return c == 0 || s > g.SlotSize(c-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableGeometry(t *testing.T) {
	g, err := NewTableGeometry(4096, []int{80, 200, 1000, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumClasses != 4 || g.MaxItemSize() != 4096 {
		t.Fatalf("geometry shape wrong: %+v", g)
	}
	cases := []struct{ size, want int }{
		{0, 0}, {1, 0}, {80, 0}, {81, 1}, {200, 1}, {201, 2},
		{1000, 2}, {1001, 3}, {4096, 3}, {4097, -1},
	}
	for _, c := range cases {
		if got := g.ClassFor(c.size); got != c.want {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if got := g.SlotsPerSlab(0); got != 4096/80 {
		t.Errorf("SlotsPerSlab(0) = %d, want %d", got, 4096/80)
	}
}

func TestTableGeometryRejects(t *testing.T) {
	cases := []struct {
		slab  int
		slots []int
	}{
		{4096, nil},                 // empty table
		{4096, []int{}},             // empty table
		{4096, []int{64, 64}},       // not strictly increasing
		{4096, []int{128, 64}},      // decreasing
		{4096, []int{0, 64}},        // non-positive slot
		{4096, []int{64, 8192}},     // slot exceeds slab
		{0, []int{64}},              // bad slab size
		{4096, []int{-1, 64, 4096}}, // negative slot
	}
	for i, c := range cases {
		if _, err := NewTableGeometry(c.slab, c.slots); err == nil {
			t.Errorf("case %d: NewTableGeometry(%d, %v) accepted", i, c.slab, c.slots)
		}
	}
	// Mismatched NumClasses vs table length is rejected too.
	g := Geometry{SlabSize: 4096, NumClasses: 3, Slots: []int{64, 128}}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted NumClasses != len(Slots)")
	}
}

func TestTableGeometryEqualsPowerOfTwo(t *testing.T) {
	p2 := Geometry{SlabSize: 4096, Base: 64, NumClasses: 4}
	tab, err := NewTableGeometry(4096, []int{64, 128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(p2) || !p2.Equal(tab) {
		t.Fatal("table geometry with power-of-two slots should Equal the law form")
	}
	tab2, _ := NewTableGeometry(4096, []int{64, 128, 256, 1024})
	if tab2.Equal(p2) {
		t.Fatal("different slot tables must not be Equal")
	}
	if !p2.Equal(p2) || p2.IsZero() {
		t.Fatal("self-equality / IsZero broken")
	}
	if !(Geometry{}).IsZero() {
		t.Fatal("zero Geometry must report IsZero")
	}
}

func TestTableClassForFitsSlot(t *testing.T) {
	g, err := NewTableGeometry(1<<20, []int{48, 100, 333, 1024, 5000, 65536, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	f := func(size uint32) bool {
		s := int(size % uint32(g.MaxItemSize()+2))
		c := g.ClassFor(s)
		if s > g.MaxItemSize() {
			return c == -1
		}
		if c < 0 || c >= g.NumClasses {
			return false
		}
		if s > g.SlotSize(c) {
			return false
		}
		return c == 0 || s > g.SlotSize(c-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotsPerSlab(t *testing.T) {
	g := DefaultGeometry()
	if got := g.SlotsPerSlab(0); got != 16384 {
		t.Fatalf("SlotsPerSlab(0) = %d, want 16384", got)
	}
	if got := g.SlotsPerSlab(14); got != 1 {
		t.Fatalf("SlotsPerSlab(14) = %d, want 1", got)
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	f := func(id uint64) bool { return KeyID(KeyString(id)) == id }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyIDWrongShape(t *testing.T) {
	if KeyID("not8b") != 0 {
		t.Fatal("KeyID should return 0 for non-8-byte keys")
	}
}

func TestHashStringMatchesBytes(t *testing.T) {
	f := func(b []byte) bool { return HashString(string(b)) == HashBytes(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashStringSpreadsLowBits(t *testing.T) {
	// Short sequential keys must not collide in the low bits the index uses
	// for bucket selection.
	const n = 4096
	seen := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		h := HashString(KeyString(uint64(i))) & 1023
		seen[h]++
	}
	// With 4096 keys over 1024 buckets, a catastrophically biased hash puts
	// hundreds in one bucket; a decent one stays near the mean of 4.
	for b, c := range seen {
		if c > 32 {
			t.Fatalf("bucket %d received %d of %d keys: low bits not mixed", b, c, n)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must map to distinct outputs (spot check).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		m := Mix64(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, i, m)
		}
		seen[m] = i
	}
}

func TestOpString(t *testing.T) {
	if Get.String() != "get" || Set.String() != "set" || Delete.String() != "delete" {
		t.Fatal("Op.String mismatch")
	}
	if Op(77).String() != "op(77)" {
		t.Fatal("unknown Op formatting")
	}
}

func TestItemReset(t *testing.T) {
	it := &Item{Key: "k", Size: 10, Penalty: 0.5, Value: []byte("abcd"), Class: 3}
	it.Reset()
	if it.Key != "" || it.Size != 0 || it.Penalty != 0 || it.Class != 0 {
		t.Fatalf("Reset left state behind: %+v", it)
	}
	if it.Value == nil || len(it.Value) != 0 || cap(it.Value) != 4 {
		t.Fatalf("Reset should keep value capacity, got len=%d cap=%d", len(it.Value), cap(it.Value))
	}
}
