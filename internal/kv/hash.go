package kv

import "encoding/binary"

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// HashString computes the 64-bit FNV-1a hash of s followed by a strong
// avalanche finalizer (the splitmix64 mixer). Plain FNV leaves the low bits
// poorly mixed for short keys, which would bias both the bucket choice in the
// hash index and the double-hashing scheme in the Bloom filters.
func HashString(s string) uint64 {
	h := uint64(fnv64Offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv64Prime
	}
	return Mix64(h)
}

// HashBytes is HashString for byte slices, avoiding a string conversion.
func HashBytes(b []byte) uint64 {
	h := uint64(fnv64Offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnv64Prime
	}
	return Mix64(h)
}

// Mix64 is the splitmix64 finalizer: a cheap bijective mixer with full
// avalanche, used to post-process FNV output and to derive independent hash
// streams for Bloom double hashing.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyString encodes a numeric workload key id as a fixed 8-byte string so the
// simulator and the string-keyed engine share one key representation.
func KeyString(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return string(b[:])
}

// KeyID decodes a key produced by KeyString. It returns 0 for keys of other
// shapes (e.g. keys set through the network protocol).
func KeyID(key string) uint64 {
	if len(key) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64([]byte(key))
}
