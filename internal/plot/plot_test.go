package plot

import (
	"strings"
	"testing"

	"pamakv/internal/metrics"
)

func TestChartClampsSize(t *testing.T) {
	c := NewChart(1, 1)
	if c.w < 16 || c.h < 4 {
		t.Fatalf("chart not clamped: %dx%d", c.w, c.h)
	}
}

func TestChartPlotsCorners(t *testing.T) {
	c := NewChart(20, 5)
	c.Bounds(0, 0)
	c.Bounds(10, 100)
	c.Point(0, 0, 'a')
	c.Point(10, 100, 'b')
	var sb strings.Builder
	if err := c.Render(&sb, "corners"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	// 'b' on the top row, 'a' on the bottom data row.
	if !strings.Contains(lines[1], "b") {
		t.Fatalf("top corner missing:\n%s", out)
	}
	if !strings.Contains(lines[5], "a") {
		t.Fatalf("bottom corner missing:\n%s", out)
	}
	if !strings.Contains(out, "corners") || !strings.Contains(out, "100") {
		t.Fatalf("title or tick missing:\n%s", out)
	}
}

func TestChartOverlapMarker(t *testing.T) {
	c := NewChart(16, 4)
	c.Bounds(0, 0)
	c.Bounds(1, 1)
	c.Point(0, 0, 'a')
	c.Point(0, 0, 'b')
	var sb strings.Builder
	c.Render(&sb, "")
	if !strings.Contains(sb.String(), "&") {
		t.Fatal("overlapping markers should render '&'")
	}
}

func TestChartLogAxes(t *testing.T) {
	c := NewChart(16, 4).LogX().LogY()
	c.Bounds(1, 0.001)
	c.Bounds(1e6, 5)
	c.Point(1000, 0.07, 'm') // the log-midpoint-ish
	c.Point(-5, 0.07, 'x')   // non-positive on log axis: dropped
	var sb strings.Builder
	c.Render(&sb, "")
	if !strings.Contains(sb.String(), "m") {
		t.Fatal("log point missing")
	}
	if strings.Contains(sb.String(), "x") {
		t.Fatal("invalid log point plotted")
	}
}

func mkSeries(name string, vals ...float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, v := range vals {
		s.Append(metrics.Point{GetsServed: uint64((i + 1) * 100), HitRatio: v, AvgService: v / 10})
	}
	return s
}

func TestSeriesRendersLegend(t *testing.T) {
	a := mkSeries("pama", 0.5, 0.7, 0.9)
	b := mkSeries("psa", 0.4, 0.5, 0.6)
	var sb strings.Builder
	if err := Series(&sb, "hit ratio", ColHitRatio, []*metrics.Series{a, b}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"hit ratio", "*=pama", "+=psa", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesServiceColumn(t *testing.T) {
	a := mkSeries("x", 1.0, 2.0)
	var sb strings.Builder
	if err := Series(&sb, "svc", ColAvgService, []*metrics.Series{a}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.200") {
		t.Fatalf("service max tick missing:\n%s", sb.String())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Series(&sb, "t", ColHitRatio, []*metrics.Series{{Name: "e"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty series should say so")
	}
}

func TestScatter(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{0.001, 0.01, 0.1, 1}
	var sb strings.Builder
	if err := Scatter(&sb, "fig1", xs, ys); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), ".") < 4 {
		t.Fatalf("scatter points missing:\n%s", sb.String())
	}
	if err := Scatter(&sb, "bad", xs, ys[:2]); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
