// Package plot renders metric series as ASCII charts, so the repository's
// figures can be eyeballed in a terminal without external plotting tools:
// line charts for the paper's time series (hit ratio, service time) and
// log-log scatters for the penalty model (Fig. 1).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"pamakv/internal/metrics"
)

// markers distinguish up to eight series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Chart is a fixed-size character canvas with axes.
type Chart struct {
	w, h                   int
	cells                  [][]byte
	xmin, xmax, ymin, ymax float64
	logX, logY             bool
}

// NewChart creates a w×h plotting area (excluding axes). Minimums are
// clamped to 16×4.
func NewChart(w, h int) *Chart {
	if w < 16 {
		w = 16
	}
	if h < 4 {
		h = 4
	}
	c := &Chart{w: w, h: h}
	c.cells = make([][]byte, h)
	for i := range c.cells {
		c.cells[i] = []byte(strings.Repeat(" ", w))
	}
	c.xmin, c.xmax = math.Inf(1), math.Inf(-1)
	c.ymin, c.ymax = math.Inf(1), math.Inf(-1)
	return c
}

// LogX switches the x axis to log10 scale (values must be positive).
func (c *Chart) LogX() *Chart { c.logX = true; return c }

// LogY switches the y axis to log10 scale (values must be positive).
func (c *Chart) LogY() *Chart { c.logY = true; return c }

// Bounds grows the data window to include the given point.
func (c *Chart) Bounds(x, y float64) {
	if x < c.xmin {
		c.xmin = x
	}
	if x > c.xmax {
		c.xmax = x
	}
	if y < c.ymin {
		c.ymin = y
	}
	if y > c.ymax {
		c.ymax = y
	}
}

func (c *Chart) tx(v, lo, hi float64, log bool, n int) int {
	if log {
		if v <= 0 || lo <= 0 {
			return -1
		}
		v, lo, hi = math.Log10(v), math.Log10(lo), math.Log10(hi)
	}
	if hi <= lo {
		return 0
	}
	p := int(math.Round((v - lo) / (hi - lo) * float64(n-1)))
	if p < 0 || p >= n {
		return -1
	}
	return p
}

// Point plots one data point with the given marker.
func (c *Chart) Point(x, y float64, marker byte) {
	px := c.tx(x, c.xmin, c.xmax, c.logX, c.w)
	py := c.tx(y, c.ymin, c.ymax, c.logY, c.h)
	if px < 0 || py < 0 {
		return
	}
	row := c.h - 1 - py
	if cur := c.cells[row][px]; cur != ' ' && cur != marker {
		c.cells[row][px] = '&' // overlap
		return
	}
	c.cells[row][px] = marker
}

// Render writes the canvas with a y-axis gutter and x-axis line.
func (c *Chart) Render(w io.Writer, title string) error {
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	fmtTick := func(v float64) string {
		av := math.Abs(v)
		switch {
		case v == 0:
			return "0"
		case av >= 1e6 || av < 1e-3:
			return fmt.Sprintf("%.1e", v)
		case av >= 100:
			return fmt.Sprintf("%.0f", v)
		default:
			return fmt.Sprintf("%.3f", v)
		}
	}
	for i, row := range c.cells {
		label := strings.Repeat(" ", 9)
		switch i {
		case 0:
			label = fmt.Sprintf("%9s", fmtTick(c.ymax))
		case c.h - 1:
			label = fmt.Sprintf("%9s", fmtTick(c.ymin))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", c.w)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%9s  %-*s%s\n", "", c.w-len(fmtTick(c.xmax)), fmtTick(c.xmin), fmtTick(c.xmax))
	return err
}

// Series renders several metric series as a line chart of the chosen column.
type Column int

// Columns selectable for Series.
const (
	// ColHitRatio plots Point.HitRatio.
	ColHitRatio Column = iota
	// ColAvgService plots Point.AvgService.
	ColAvgService
)

// Series renders the series' chosen column against GetsServed, one marker
// per series, followed by a legend.
func Series(w io.Writer, title string, col Column, series []*metrics.Series) error {
	ch := NewChart(72, 16)
	val := func(p metrics.Point) float64 {
		if col == ColAvgService {
			return p.AvgService
		}
		return p.HitRatio
	}
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			ch.Bounds(float64(p.GetsServed), val(p))
			any = true
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", title)
		return err
	}
	for i, s := range series {
		m := markers[i%len(markers)]
		for _, p := range s.Points {
			ch.Point(float64(p.GetsServed), val(p), m)
		}
	}
	if err := ch.Render(w, title); err != nil {
		return err
	}
	var legend []string
	for i, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[i%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%11s%s\n\n", "", strings.Join(legend, "  "))
	return err
}

// Scatter renders (x, y) pairs on log-log axes — Fig. 1's penalty-vs-size
// cloud.
func Scatter(w io.Writer, title string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("plot: %d xs vs %d ys", len(xs), len(ys))
	}
	ch := NewChart(72, 20).LogX().LogY()
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			ch.Bounds(xs[i], ys[i])
		}
	}
	for i := range xs {
		ch.Point(xs[i], ys[i], '.')
	}
	return ch.Render(w, title)
}
