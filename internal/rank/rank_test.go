package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
	"pamakv/internal/lru"
)

func TestInsertRank(t *testing.T) {
	r := New(8)
	items := make([]*kv.Item, 5)
	for i := range items {
		items[i] = &kv.Item{}
		r.Insert(items[i])
	}
	// Later insertions sit nearer the top: items[0] is at the bottom.
	for i, it := range items {
		if got := r.Rank(it); got != i {
			t.Fatalf("Rank(items[%d]) = %d, want %d", i, got, i)
		}
	}
}

func TestRemoveShiftsRanks(t *testing.T) {
	r := New(8)
	items := make([]*kv.Item, 5)
	for i := range items {
		items[i] = &kv.Item{}
		r.Insert(items[i])
	}
	r.Remove(items[1])
	want := map[int]int{0: 0, 2: 1, 3: 2, 4: 3}
	for i, w := range want {
		if got := r.Rank(items[i]); got != w {
			t.Fatalf("after remove, Rank(items[%d]) = %d, want %d", i, got, w)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestReaccessMovesToTop(t *testing.T) {
	r := New(8)
	a, b, c := &kv.Item{}, &kv.Item{}, &kv.Item{}
	r.Insert(a)
	r.Insert(b)
	r.Insert(c)
	// Simulate access of a: remove + reinsert.
	r.Remove(a)
	r.Insert(a)
	if r.Rank(b) != 0 || r.Rank(c) != 1 || r.Rank(a) != 2 {
		t.Fatalf("ranks after reaccess: b=%d c=%d a=%d", r.Rank(b), r.Rank(c), r.Rank(a))
	}
}

func TestFullAndPanic(t *testing.T) {
	r := New(1) // rounds to 64
	for i := 0; i < 64; i++ {
		r.Insert(&kv.Item{})
	}
	if !r.Full() {
		t.Fatal("ring should be full after cap insertions")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Insert into full ring should panic")
		}
	}()
	r.Insert(&kv.Item{})
}

func TestResetGrows(t *testing.T) {
	r := New(1)
	var live []*kv.Item
	for i := 0; i < 60; i++ {
		it := &kv.Item{}
		r.Insert(it)
		live = append(live, it)
	}
	r.Reset()
	if r.cap <= 64 {
		t.Fatalf("Reset should have grown capacity beyond 64 for %d live items, got %d", len(live), r.cap)
	}
	if r.Len() != 0 {
		t.Fatal("Reset should clear live count")
	}
	for i, it := range live {
		r.Insert(it)
		if got := r.Rank(it); got != i {
			t.Fatalf("post-reset Rank = %d, want %d", got, i)
		}
	}
}

// TestAgainstListModel co-drives a Ring with an lru.List, compacting when
// full, and checks Rank matches the true list position from the bottom.
func TestAgainstListModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(4)
		var l lru.List
		compact := func() {
			r.Reset()
			l.AscendFromBack(func(it *kv.Item) bool {
				r.Insert(it)
				return true
			})
		}
		for op := 0; op < 500; op++ {
			switch c := rng.Intn(4); {
			case c <= 1 || l.Len() == 0: // insert
				if r.Full() {
					compact()
				}
				it := &kv.Item{}
				l.PushFront(it)
				r.Insert(it)
			case c == 2: // access a random item
				pick := rng.Intn(l.Len())
				var it *kv.Item
				i := 0
				l.AscendFromBack(func(x *kv.Item) bool {
					if i == pick {
						it = x
						return false
					}
					i++
					return true
				})
				r.Remove(it)
				l.MoveToFront(it)
				if r.Full() {
					compact() // re-inserts it along with everything else
				} else {
					r.Insert(it)
				}
			case c == 3: // evict bottom
				it := l.PopBack()
				r.Remove(it)
			}
			// Verify every position.
			pos := 0
			ok := true
			l.AscendFromBack(func(it *kv.Item) bool {
				if r.Rank(it) != pos {
					ok = false
					return false
				}
				pos++
				return true
			})
			if !ok || r.Len() != l.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingAccess(b *testing.B) {
	const n = 8192
	r := New(n)
	var l lru.List
	items := make([]*kv.Item, n)
	for i := range items {
		items[i] = &kv.Item{}
		l.PushFront(items[i])
		r.Insert(items[i])
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[rng.Intn(n)]
		_ = r.Rank(it)
		r.Remove(it)
		l.MoveToFront(it)
		if r.Full() {
			r.Reset()
			l.AscendFromBack(func(x *kv.Item) bool { r.Insert(x); return true })
		} else {
			r.Insert(it)
		}
	}
}
