// Package rank provides an order-statistics ring: given items that enter an
// LRU stack at the top and leave from arbitrary positions, it answers "how
// far is this item from the bottom of the stack?" in O(log n).
//
// PAMA's exact segment tracker uses it to decide, on every access, which
// slab-sized segment (candidate, 1st reference, 2nd reference, ...) the item
// occupied — the ground truth against which the paper's Bloom-filter
// approximation is ablated.
//
// Implementation: every insertion at the MRU end is assigned a monotonically
// increasing sequence number; stack order equals sequence order because a
// re-accessed item is removed and re-inserted with a fresh sequence. A
// Fenwick (binary indexed) tree over the sequence window counts live items,
// so rank-from-bottom is a prefix sum. When the sequence window fills up the
// caller compacts: Reset, then re-Insert bottom-to-top.
package rank

import "pamakv/internal/kv"

// Ring is the order-statistics structure for one LRU stack. The zero value
// is unusable; call New.
type Ring struct {
	bits []int32 // Fenwick tree, 1-based over [1..cap]
	cap  int     // capacity of the sequence window, power of two
	base uint64  // sequence number mapped to tree index 1
	next uint64  // next sequence number to assign
	live int
}

// New returns a Ring able to hold at least capHint live items before its
// first compaction.
func New(capHint int) *Ring {
	c := 64
	for c < capHint {
		c <<= 1
	}
	return &Ring{bits: make([]int32, c+1), cap: c}
}

// Len returns the number of live items tracked.
func (r *Ring) Len() int { return r.live }

// Full reports whether the next Insert would overflow the sequence window.
// The owner must compact (Reset + re-Insert in bottom-to-top order) first.
func (r *Ring) Full() bool { return r.next-r.base >= uint64(r.cap) }

// Reset clears the ring and, when the live population has outgrown half the
// window, doubles the window so compactions stay amortized O(1) per access.
func (r *Ring) Reset() {
	c := r.cap
	for r.live > c/4 {
		c <<= 1
	}
	if c != r.cap {
		r.bits = make([]int32, c+1)
		r.cap = c
	} else {
		for i := range r.bits {
			r.bits[i] = 0
		}
	}
	r.base, r.next, r.live = 0, 0, 0
}

// Insert assigns the next sequence number to it (recorded in it.Seq) and
// marks it live. Callers must check Full first; inserting into a full ring
// panics, as it would silently corrupt ranks.
func (r *Ring) Insert(it *kv.Item) {
	idx := r.next - r.base
	if idx >= uint64(r.cap) {
		panic("rank: Insert into full Ring; compact first")
	}
	it.Seq = r.next
	r.next++
	r.live++
	r.add(int(idx)+1, 1)
}

// Remove marks it dead. The item must have been Inserted and not Removed
// since.
func (r *Ring) Remove(it *kv.Item) {
	idx := it.Seq - r.base
	if idx >= uint64(r.cap) {
		panic("rank: Remove of item outside window")
	}
	r.live--
	r.add(int(idx)+1, -1)
}

// Rank returns the 0-based position of it counted from the bottom of the
// stack: 0 means it is the LRU item.
func (r *Ring) Rank(it *kv.Item) int {
	idx := it.Seq - r.base
	return r.sum(int(idx)) // live items strictly older (deeper) than it
}

// add applies delta at 1-based tree position i.
func (r *Ring) add(i int, delta int32) {
	for ; i <= r.cap; i += i & (-i) {
		r.bits[i] += delta
	}
}

// sum returns the count of live items in tree positions [1..i].
func (r *Ring) sum(i int) int {
	s := int32(0)
	for ; i > 0; i -= i & (-i) {
		s += r.bits[i]
	}
	return int(s)
}
