package penalty

import (
	"math"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func TestOfDeterministic(t *testing.T) {
	m := Default()
	f := func(h uint64, size uint16) bool {
		s := int(size) + 1
		return m.Of(h, s) == m.Of(h, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOfClamped(t *testing.T) {
	m := Default()
	f := func(h uint64, size uint32) bool {
		p := m.Of(h, int(size%(2<<20)))
		return p >= m.Min && p <= m.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianGrowsWithSize(t *testing.T) {
	m := Default()
	med := func(size int) float64 {
		var ps []float64
		for i := uint64(0); i < 2001; i++ {
			ps = append(ps, m.Of(kv.Mix64(i), size))
		}
		// Median by nth element via simple selection.
		lo, hi := m.Min, m.Max
		for iter := 0; iter < 60; iter++ {
			mid := (lo + hi) / 2
			n := 0
			for _, p := range ps {
				if p <= mid {
					n++
				}
			}
			if n < len(ps)/2 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	small, large := med(64), med(1<<20)
	if large < 20*small {
		t.Fatalf("median at 1MiB (%.4fs) should dwarf median at 64B (%.4fs)", large, small)
	}
}

func TestSpreadAtFixedSize(t *testing.T) {
	m := Default()
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := uint64(0); i < 5000; i++ {
		p := m.Of(kv.Mix64(i*2654435761), 1024)
		if p < mn {
			mn = p
		}
		if p > mx {
			mx = p
		}
	}
	if mx/mn < 10 {
		t.Fatalf("penalty spread at fixed size only %.1fx; paper shows orders of magnitude", mx/mn)
	}
}

func TestUniformModel(t *testing.T) {
	m := Uniform(0.25)
	for i := uint64(0); i < 100; i++ {
		if p := m.Of(i, int(i%4096)+1); p != 0.25 {
			t.Fatalf("Uniform model returned %v", p)
		}
	}
}

func TestSubclassFor(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{0.0001, 0}, {0.001, 0}, {0.0011, 1}, {0.01, 1}, {0.05, 2},
		{0.1, 2}, {0.5, 3}, {1.0, 3}, {2.0, 4}, {5.0, 4}, {99.0, 4},
	}
	for _, c := range cases {
		if got := SubclassFor(c.p, SubclassBounds); got != c.want {
			t.Errorf("SubclassFor(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSubclassCoversModelRange(t *testing.T) {
	m := Default()
	seen := map[int]bool{}
	for i := uint64(0); i < 200000; i++ {
		size := 64 << (i % 15)
		p := m.Of(kv.Mix64(i*0x9e3779b97f4a7c15), size)
		seen[SubclassFor(p, SubclassBounds)] = true
	}
	// The model must exercise every penalty subclass, otherwise PAMA's
	// subclass machinery would be untested by the workloads.
	for s := 0; s < len(SubclassBounds); s++ {
		if !seen[s] {
			t.Fatalf("model never produces subclass %d penalties", s)
		}
	}
}

func TestZeroAndNegativeSize(t *testing.T) {
	m := Default()
	if p := m.Of(1, 0); p < m.Min || p > m.Max {
		t.Fatalf("size 0 penalty out of range: %v", p)
	}
	if p := m.Of(1, -5); p < m.Min || p > m.Max {
		t.Fatalf("negative size penalty out of range: %v", p)
	}
}
