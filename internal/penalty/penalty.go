// Package penalty models per-item miss penalties.
//
// The paper (Fig. 1) measures, on Facebook's APP trace, GET-miss penalties
// spanning roughly three decades — about a millisecond to several seconds —
// with the central tendency rising with item size (bigger values come from
// heavier database queries or computations) while retaining a wide spread at
// every size. The traces themselves are proprietary, so this package
// substitutes a deterministic generative model with the same two properties:
//
//   - the median penalty follows a power law in item size
//     (median(size) = Base * (size/64)^Slope seconds), and
//   - around the median, penalties are log-normally dispersed with
//     parameter Sigma, clamped to [Min, Max] = [1 ms, 5 s], matching the
//     paper's 5-second cap on the miss→SET gap.
//
// Each key's penalty is a pure function of (key hash, size, Seed), so a key
// misses with the same penalty every time — exactly what a cache replaying a
// trace would observe — and experiments are reproducible.
package penalty

import (
	"math"

	"pamakv/internal/kv"
)

// Default values shared with the paper's setup.
const (
	// DefaultUnknown is assumed when a miss penalty cannot be estimated
	// (paper §IV: "we use a default penalty value (100ms), which is
	// roughly the observed mean penalty").
	DefaultUnknown = 0.100
	// Cap is the maximum credible penalty; longer gaps are discarded by
	// the estimator (paper §IV: 5 seconds).
	Cap = 5.0
	// DefaultHitTime is the service time of a GET hit: in-memory lookup
	// plus network round trip, far below any miss penalty.
	DefaultHitTime = 0.0005
)

// Model generates deterministic per-key penalties. The zero Model is not
// useful; start from Default.
type Model struct {
	// Base is the median penalty in seconds of a 64-byte item.
	Base float64
	// Slope is the power-law exponent of median growth with size.
	Slope float64
	// Sigma is the log-normal dispersion (in natural-log space).
	Sigma float64
	// HeavyFrac is the probability that a key belongs to the heavy
	// component — values produced by expensive back-end computations,
	// visible in paper Fig. 1 as a cloud of 0.5–5 s penalties at every
	// size. Heavy keys draw log-uniformly from [HeavyLo, Max].
	HeavyFrac float64
	// HeavyLo is the lower edge of the heavy component in seconds.
	HeavyLo float64
	// Min and Max clamp the result, in seconds.
	Min, Max float64
	// Seed decorrelates penalty draws from other hash uses.
	Seed uint64
}

// Default returns the model calibrated to the shape of paper Fig. 1: 64-byte
// items at a ~5 ms median rising to ~500 ms at 1 MiB, with penalties at any
// one size dispersed over roughly three decades (95% within a factor of
// ~e^±3), clamped to [1 ms, 5 s].
func Default() Model {
	return Model{
		Base:      0.005,
		Slope:     math.Log(100) / math.Log(float64(1<<20)/64), // x100 median over the size range
		Sigma:     1.5,
		HeavyFrac: 0.12,
		HeavyLo:   0.5,
		Min:       0.001,
		Max:       Cap,
		Seed:      0x70616d61, // "pama"
	}
}

// Uniform returns a degenerate model where every miss costs p seconds —
// useful for isolating penalty awareness in tests (under Uniform, PAMA and
// pre-PAMA must make identical decisions up to subclass bucketing).
func Uniform(p float64) Model {
	return Model{Base: p, Slope: 0, Sigma: 0, Min: p, Max: p}
}

// Of returns the penalty, in seconds, of the item with the given key hash
// and size.
func (m Model) Of(keyHash uint64, size int) float64 {
	if size < 1 {
		size = 1
	}
	h := kv.Mix64(keyHash ^ m.Seed)
	if m.HeavyFrac > 0 {
		hsel := kv.Mix64(h ^ 0x68657679) // "hevy"
		if float64(hsel>>11)/float64(1<<53) < m.HeavyFrac {
			// Heavy component: log-uniform in [HeavyLo, Max],
			// independent of size (paper Fig. 1's upper cloud).
			u := float64(kv.Mix64(hsel)>>11) / float64(1<<53)
			return m.HeavyLo * math.Exp(u*math.Log(m.Max/m.HeavyLo))
		}
	}
	med := m.Base * math.Pow(float64(size)/64.0, m.Slope)
	p := med
	if m.Sigma > 0 {
		z := normal(h)
		p = med * math.Exp(m.Sigma*z)
	}
	if p < m.Min {
		p = m.Min
	}
	if p > m.Max {
		p = m.Max
	}
	return p
}

// normal derives a standard normal variate deterministically from a 64-bit
// hash via Box–Muller over two uniforms split from the hash.
func normal(h uint64) float64 {
	u1 := float64(h>>40|1) / float64(1<<24) // (0,1], 24 bits
	u2 := float64(h&0xffffff) / float64(1<<24)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// SubclassBounds are the paper's five penalty ranges, in seconds:
// (0,1ms], (1ms,10ms], (10ms,100ms], (100ms,1s], (1s,5s].
// Bounds[i] is the inclusive upper edge of subclass i.
var SubclassBounds = []float64{0.001, 0.010, 0.100, 1.0, Cap}

// SubclassFor maps a penalty to its subclass index under bounds; penalties
// above the last bound land in the last subclass.
func SubclassFor(p float64, bounds []float64) int {
	for i, b := range bounds {
		if p <= b {
			return i
		}
	}
	return len(bounds) - 1
}
