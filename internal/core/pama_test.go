package core

import (
	"fmt"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

func smallGeom() kv.Geometry { return kv.Geometry{SlabSize: 4096, Base: 64, NumClasses: 4} }

func newPAMACache(t *testing.T, slabs int, cfg Config) (*cache.Cache, *PAMA) {
	t.Helper()
	p := New(cfg)
	c, err := cache.New(cache.Config{
		Geometry:   smallGeom(),
		CacheBytes: int64(slabs) * 4096,
		WindowLen:  256,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestConfigDefaults(t *testing.T) {
	p := New(DefaultConfig())
	if p.Name() != "pama" || p.Segments() != 3 || p.GhostSegments() != 3 {
		t.Fatalf("defaults: name=%q segs=%d ghost=%d", p.Name(), p.Segments(), p.GhostSegments())
	}
	if len(p.SubclassBounds()) != 5 {
		t.Fatalf("bounds = %v, want the paper's 5 subclasses", p.SubclassBounds())
	}
	pre := New(PrePAMAConfig())
	if pre.Name() != "pre-pama" || pre.SubclassBounds() != nil {
		t.Fatalf("pre-PAMA: name=%q bounds=%v", pre.Name(), pre.SubclassBounds())
	}
	if neg := New(Config{M: -3, PenaltyAware: true}); neg.Segments() != 1 {
		t.Fatalf("negative M should clamp to 0 references, got %d segments", neg.Segments())
	}
}

func TestWeightReflectsPenaltyAwareness(t *testing.T) {
	pa, pre := New(DefaultConfig()), New(PrePAMAConfig())
	if pa.weight(2.5) != 2.5 {
		t.Fatal("PAMA weight should be the penalty")
	}
	if pre.weight(2.5) != 1 {
		t.Fatal("pre-PAMA weight should be 1")
	}
}

func TestValueAccumulationAndWindow(t *testing.T) {
	c, p := newPAMACache(t, 2, DefaultConfig())
	_ = c
	it := &kv.Item{Class: 0, Sub: 1, Penalty: 0.5}
	p.OnHit(it, 0)
	p.OnHit(it, 1)
	p.OnHit(it, -1) // untracked region: ignored
	p.OnHit(it, 99) // out of range: ignored
	// Eq. 2: V = V0/2 + V1/4 + V2/8 = 0.25 + 0.125.
	if got, want := p.OutgoingValue(0, 1), 0.375; got != want {
		t.Fatalf("OutgoingValue = %v, want %v", got, want)
	}
	p.OnWindow()
	// Previous window still contributes fully.
	if got := p.OutgoingValue(0, 1); got != 0.375 {
		t.Fatalf("post-window OutgoingValue = %v, want 0.375", got)
	}
	p.OnWindow()
	if got := p.OutgoingValue(0, 1); got != 0 {
		t.Fatalf("stale value survived two windows: %v", got)
	}
}

func TestIncomingValueFromGhosts(t *testing.T) {
	_, p := newPAMACache(t, 2, DefaultConfig())
	g := &kv.Item{Class: 1, Sub: 2, Penalty: 1.0, Ghost: true}
	p.OnMiss(1, 2, g, 0)
	p.OnMiss(1, 2, g, 2)
	p.OnMiss(1, 2, nil, -1) // plain miss: no incoming value
	if got, want := p.IncomingValue(1, 2), 0.5+0.125; got != want {
		t.Fatalf("IncomingValue = %v, want %v", got, want)
	}
}

// fillClass inserts n items of the given size and penalty.
func fillClass(c *cache.Cache, prefix string, n, size int, pen float64) {
	for i := 0; i < n; i++ {
		c.Set(fmt.Sprintf("%s%d", prefix, i), size, pen, 0, nil)
	}
}

func TestForcedMigrationWhenClassEmpty(t *testing.T) {
	c, p := newPAMACache(t, 1, DefaultConfig())
	fillClass(c, "small", 64, 50, 0.05) // class 0 owns the only slab
	// Class 3 needs a slab; PAMA must migrate regardless of values.
	if err := c.Set("big", 512, 0.05, 0, nil); err != nil {
		t.Fatal(err)
	}
	d := p.Decisions()
	if d.Forced != 1 || d.Migrations != 1 {
		t.Fatalf("decisions = %+v, want one forced migration", d)
	}
	if c.Slabs(0) != 0 || c.Slabs(3) != 1 {
		t.Fatalf("slabs: class0=%d class3=%d", c.Slabs(0), c.Slabs(3))
	}
}

func TestSameClassReplacesInPlace(t *testing.T) {
	c, p := newPAMACache(t, 1, DefaultConfig())
	fillClass(c, "x", 64, 50, 0.05)
	// Class 0 full, memory exhausted; the only candidate is class 0
	// itself -> in-place replacement, no migration.
	if err := c.Set("one-more", 50, 0.05, 0, nil); err != nil {
		t.Fatal(err)
	}
	d := p.Decisions()
	if d.SameClass != 1 || d.Migrations != 0 {
		t.Fatalf("decisions = %+v, want one SameClass", d)
	}
	if c.Items() != 64 {
		t.Fatalf("items = %d, want 64", c.Items())
	}
}

func TestNotWorthItKeepsAllocations(t *testing.T) {
	c, p := newPAMACache(t, 2, DefaultConfig())
	fillClass(c, "hot", 64, 50, 0.05) // class 0, slab 1
	fillClass(c, "big", 8, 400, 0.05) // class 2, slab 2 (8 slots of 256B? 400 -> class 3 slot 512, 8 per slab)
	// Make class 0's candidate expensive: hit its bottom items heavily.
	for r := 0; r < 5; r++ {
		for i := 0; i < 10; i++ {
			c.Get(fmt.Sprintf("hot%d", i), 0, 0, nil)
		}
	}
	// Class 3 is full with zero incoming value (no ghost hits yet): a new
	// class-3 insert should not strip class 0.
	preSlabs0 := c.Slabs(0)
	if err := c.Set("bignew", 400, 0.05, 0, nil); err != nil {
		t.Fatal(err)
	}
	if c.Slabs(0) != preSlabs0 {
		t.Fatal("migration happened despite zero incoming value")
	}
	d := p.Decisions()
	if d.NotWorthIt == 0 && d.SameClass == 0 {
		t.Fatalf("decisions = %+v, expected an in-place path", d)
	}
}

func TestMigrationPrefersCheapDonor(t *testing.T) {
	cfg := DefaultConfig()
	c, p := newPAMACache(t, 2, cfg)
	// Slab 1: class 0 filled with cheap-penalty items, never re-accessed
	// (worthless candidate). Slab 2: class 1 filled with items that keep
	// getting hit at the stack bottom (valuable candidate).
	fillClass(c, "cold", 64, 50, 0.002) // class 0
	fillClass(c, "warm", 32, 100, 2.0)  // class 1
	for r := 0; r < 20; r++ {
		for i := 0; i < 32; i++ {
			c.Get(fmt.Sprintf("warm%d", i), 0, 0, nil)
		}
	}
	// Class 3 appears and needs a slab: donor must be class 0.
	if err := c.Set("big", 512, 1.0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if c.Slabs(0) != 0 {
		t.Fatalf("class 0 (worthless) kept its slab; slabs: %v %v %v",
			c.Slabs(0), c.Slabs(1), c.Slabs(3))
	}
	if c.Slabs(1) != 1 {
		t.Fatal("class 1 (valuable) was robbed")
	}
	if p.Decisions().Migrations == 0 {
		t.Fatal("no migration recorded")
	}
}

func TestPenaltyAwarenessChangesVictim(t *testing.T) {
	// Two donor subclasses with identical request counts but different
	// penalties: PAMA must take from the cheap one, pre-PAMA is
	// indifferent (ties broken by scan order, so it takes the first).
	run := func(aware bool) int {
		cfg := Config{M: 0, PenaltyAware: aware, Bounds: []float64{0.01, 5.0}}
		p := New(cfg)
		c, err := cache.New(cache.Config{
			Geometry:   smallGeom(),
			CacheBytes: 3 * 4096,
			WindowLen:  1 << 30,
		}, p)
		if err != nil {
			t.Fatal(err)
		}
		// Class 0 sub 0: cheap penalties; class 1 sub 1: dear penalties.
		fillClass(c, "cheap", 64, 50, 0.005)
		fillClass(c, "dear", 32, 100, 2.0)
		fillClass(c, "filler", 8, 500, 2.0) // class 3 takes 3rd slab
		// Equal bottom-segment traffic on the cheap and dear candidates,
		// and keep the filler expensive so it is never the obvious donor.
		for r := 0; r < 10; r++ {
			for i := 0; i < 8; i++ {
				c.Get(fmt.Sprintf("cheap%d", i), 0, 0, nil)
				c.Get(fmt.Sprintf("dear%d", i), 0, 0, nil)
				c.Get(fmt.Sprintf("filler%d", i), 0, 0, nil)
			}
		}
		// Force class 2 to need a slab, with high incoming pressure
		// faked by ghost traffic: first create misses with ghosts.
		for i := 0; i < 40; i++ {
			c.Set(fmt.Sprintf("mid%d", i), 200, 2.0, 0, nil)
			c.Get(fmt.Sprintf("mid%d", i), 200, 2.0, nil)
		}
		if c.Slabs(0) == 0 {
			return 0
		}
		if c.Slabs(1) == 0 {
			return 1
		}
		return -1
	}
	if victim := run(true); victim != 0 {
		t.Fatalf("PAMA robbed class %d, want cheap class 0", victim)
	}
}

func TestDecisionsCopied(t *testing.T) {
	_, p := newPAMACache(t, 1, DefaultConfig())
	d := p.Decisions()
	d.Migrations = 99
	if p.Decisions().Migrations == 99 {
		t.Fatal("Decisions returned a reference")
	}
}
