package core

import (
	"testing"

	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/workload"
)

func TestCalibrateBoundsShape(t *testing.T) {
	cfg := workload.ETC()
	bounds, err := CalibrateBounds(cfg, 20_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 5 {
		t.Fatalf("got %d bounds, want 5", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing: %v", bounds)
		}
	}
	if bounds[4] != penalty.Cap {
		t.Fatalf("last bound %v must be the cap", bounds[4])
	}
}

func TestCalibrateBoundsBalancesMass(t *testing.T) {
	cfg := workload.ETC()
	const k = 5
	bounds, err := CalibrateBounds(cfg, 50_000, k)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	const probes = 20_000
	for i := 0; i < probes; i++ {
		h := kv.Mix64(uint64(i)*2654435761 + 12345)
		p := cfg.Penalty.Of(h, cfg.SizeOf(h))
		counts[penalty.SubclassFor(p, bounds)]++
	}
	for s, c := range counts {
		share := float64(c) / probes
		if share < 0.10 || share > 0.35 {
			t.Fatalf("subclass %d holds %.3f of keys (counts %v); quantile calibration failed", s, share, counts)
		}
	}
}

func TestCalibrateBoundsRejects(t *testing.T) {
	cfg := workload.ETC()
	if _, err := CalibrateBounds(cfg, 2, 5); err == nil {
		t.Fatal("too few samples accepted")
	}
	if _, err := CalibrateBounds(cfg, 100, 0); err == nil {
		t.Fatal("zero subclasses accepted")
	}
}

func TestCalibratedBoundsDriveCache(t *testing.T) {
	cfg := workload.ETC()
	bounds, err := CalibrateBounds(cfg, 10_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newPAMACache(t, 2, Config{M: 2, PenaltyAware: true, Bounds: bounds})
	for i := 0; i < 100; i++ {
		if err := c.Set(kv.KeyString(uint64(i)), 50, 0.02, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Items() != 100 {
		t.Fatalf("items = %d", c.Items())
	}
}
