// Package core implements PAMA — the Penalty Aware Memory Allocation scheme
// of Ou et al. (ICPP 2015) — as a cache.Policy.
//
// PAMA divides every size class into subclasses by miss-penalty range, runs
// one LRU stack per subclass, and prices the bottom slab-worth of every
// stack (the candidate slab) by the miss penalty its items absorbed in the
// recent past:
//
//	V = Σ_{i=0..m} V_i / 2^(i+1)             (paper Eq. 2)
//
// where V_i sums the penalties of requests that hit the i-th bottom segment
// in the value window (V_0 = candidate segment, higher i = reference
// segments; paper Eq. 1). Symmetrically, each subclass has an incoming value
// computed over its ghost region — the penalties of misses that an extra
// slab would have converted to hits.
//
// On a miss that needs space with memory exhausted, PAMA picks the globally
// cheapest candidate slab. Two guard rails from the paper §III: if the
// requesting subclass's incoming value does not exceed the cheapest outgoing
// value, migration cannot pay for itself and the class replaces internally;
// and if the cheapest candidate belongs to the requesting class, there is
// nothing to migrate — one item is replaced in place.
//
// Setting PenaltyAware to false yields the paper's pre-PAMA reference
// scheme: identical machinery, but a segment's value is its request count
// and penalty subclasses collapse to one.
package core

import (
	"math"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
	"pamakv/internal/penalty"
)

// Config parameterizes PAMA.
type Config struct {
	// M is the number of reference segments blended into a value
	// (paper default 2; Fig. 10 sweeps 0/2/4/8).
	M int
	// PenaltyAware selects PAMA (true) or pre-PAMA (false).
	PenaltyAware bool
	// Bounds are the penalty subclass edges. nil defaults to
	// penalty.SubclassBounds for PAMA and a single subclass for
	// pre-PAMA.
	Bounds []float64
}

// DefaultConfig returns the paper's configuration: m=2, penalty aware, five
// subclasses.
func DefaultConfig() Config {
	return Config{M: 2, PenaltyAware: true, Bounds: penalty.SubclassBounds}
}

// PrePAMAConfig returns the pre-PAMA reference scheme.
func PrePAMAConfig() Config { return Config{M: 2, PenaltyAware: false} }

// Decisions counts PAMA's reallocation outcomes (diagnostics and tests).
type Decisions struct {
	// Migrations counts cross-class slab moves.
	Migrations uint64
	// SameClass counts times the cheapest candidate was already in the
	// requesting class (in-place replacement, paper scenario 2).
	SameClass uint64
	// NotWorthIt counts times the incoming value could not beat the
	// cheapest outgoing value (paper scenario 1).
	NotWorthIt uint64
	// Forced counts migrations forced because the requesting class owned
	// no slabs at all.
	Forced uint64
	// SrcByClass and DstByClass histogram migration donors and
	// receivers by class (allocated at Attach).
	SrcByClass, DstByClass []uint64
	// EvictsBySub histograms evictions by subclass, summed over classes
	// (allocated at Attach).
	EvictsBySub []uint64
	// EvictedPenalty sums the penalties of evicted items per subclass.
	EvictedPenalty []float64
}

// PAMA implements cache.Policy.
type PAMA struct {
	cfg Config
	c   *cache.Cache

	nseg int
	// out[class][sub][seg] accumulates segment values in the current
	// window; outPrev holds the previous window. in/inPrev mirror them
	// for ghost (incoming) values.
	out, outPrev [][][]float64
	in, inPrev   [][][]float64

	dec Decisions
}

// New returns a PAMA policy with the given configuration.
func New(cfg Config) *PAMA {
	if cfg.M < 0 {
		cfg.M = 0
	}
	if cfg.Bounds == nil && cfg.PenaltyAware {
		cfg.Bounds = penalty.SubclassBounds
	}
	return &PAMA{cfg: cfg, nseg: cfg.M + 1}
}

// Name implements cache.Policy.
func (p *PAMA) Name() string {
	if p.cfg.PenaltyAware {
		return "pama"
	}
	return "pre-pama"
}

// SubclassBounds implements cache.Policy.
func (p *PAMA) SubclassBounds() []float64 { return p.cfg.Bounds }

// Segments implements cache.Policy.
func (p *PAMA) Segments() int { return p.nseg }

// GhostSegments implements cache.Policy.
func (p *PAMA) GhostSegments() int { return p.nseg }

// Attach implements cache.Policy.
func (p *PAMA) Attach(c *cache.Cache) {
	p.c = c
	nc := c.NumClasses()
	ns := c.NumSubclasses()
	alloc := func() [][][]float64 {
		a := make([][][]float64, nc)
		for ci := range a {
			a[ci] = make([][]float64, ns)
			for si := range a[ci] {
				a[ci][si] = make([]float64, p.nseg)
			}
		}
		return a
	}
	p.out, p.outPrev = alloc(), alloc()
	p.in, p.inPrev = alloc(), alloc()
	p.dec.SrcByClass = make([]uint64, nc)
	p.dec.DstByClass = make([]uint64, nc)
	p.dec.EvictsBySub = make([]uint64, ns)
	p.dec.EvictedPenalty = make([]float64, ns)
}

// weight is the value contribution of one request: its miss penalty under
// PAMA, one request under pre-PAMA.
func (p *PAMA) weight(pen float64) float64 {
	if p.cfg.PenaltyAware {
		return pen
	}
	return 1
}

// OnHit implements cache.Policy: hits on tracked bottom segments accrue
// outgoing value (Eq. 1).
func (p *PAMA) OnHit(it *kv.Item, seg int) {
	if seg >= 0 && seg < p.nseg {
		p.out[it.Class][it.Sub][seg] += p.weight(it.Penalty)
	}
}

// RecordBatch implements cache.BatchRecorder: deferred hits accrue exactly
// as OnHit would per entry — value accumulation is order-independent within
// a window, so the batched mirror stays oracle-exact.
func (p *PAMA) RecordBatch(hits []cache.BatchHit) {
	for i := range hits {
		if seg := hits[i].Seg; seg >= 0 && seg < p.nseg {
			it := hits[i].It
			p.out[it.Class][it.Sub][seg] += p.weight(it.Penalty)
		}
	}
}

// OnMiss implements cache.Policy: ghost-region hits accrue incoming value.
func (p *PAMA) OnMiss(class, sub int, ghost *kv.Item, ghostSeg int) {
	if ghost != nil && ghostSeg >= 0 && ghostSeg < p.nseg {
		p.in[class][sub][ghostSeg] += p.weight(ghost.Penalty)
	}
}

// OnInsert implements cache.Policy.
func (p *PAMA) OnInsert(*kv.Item) {}

// OnEvict implements cache.Policy.
func (p *PAMA) OnEvict(it *kv.Item) {
	p.dec.EvictsBySub[it.Sub]++
	p.dec.EvictedPenalty[it.Sub] += it.Penalty
}

// OnWindow implements cache.Policy: the finished window becomes the
// prediction baseline and accumulation restarts (values always blend the
// previous full window with the current partial one, so decisions early in
// a window are not starved of signal).
func (p *PAMA) OnWindow() {
	swap := func(cur, prev [][][]float64) {
		for ci := range cur {
			for si := range cur[ci] {
				copy(prev[ci][si], cur[ci][si])
				for k := range cur[ci][si] {
					cur[ci][si][k] = 0
				}
			}
		}
	}
	swap(p.out, p.outPrev)
	swap(p.in, p.inPrev)
}

// blend applies Eq. 2's geometric weights over previous + current window
// accumulations.
func blend(cur, prev []float64) float64 {
	v, w := 0.0, 0.5
	for i := range cur {
		v += (cur[i] + prev[i]) * w
		w /= 2
	}
	return v
}

// OutgoingValue returns the candidate slab value of (class, sub): the
// service-time loss per window if its candidate slab were taken away.
func (p *PAMA) OutgoingValue(class, sub int) float64 {
	return blend(p.out[class][sub], p.outPrev[class][sub])
}

// IncomingValue returns the value of granting (class, sub) one more slab:
// the service-time saving per window implied by its ghost region.
func (p *PAMA) IncomingValue(class, sub int) float64 {
	return blend(p.in[class][sub], p.inPrev[class][sub])
}

// ReportDecisions implements cache.DecisionReporter for the engine's
// introspection surface (called with the engine lock held).
func (p *PAMA) ReportDecisions() cache.PolicyDecisions {
	return cache.PolicyDecisions{
		Migrations:          p.dec.Migrations,
		SameClass:           p.dec.SameClass,
		NotWorthIt:          p.dec.NotWorthIt,
		Forced:              p.dec.Forced,
		EvictsBySub:         append([]uint64(nil), p.dec.EvictsBySub...),
		EvictedPenaltyBySub: append([]float64(nil), p.dec.EvictedPenalty...),
	}
}

// Decisions returns a copy of the decision counters.
func (p *PAMA) Decisions() Decisions {
	d := p.dec
	d.SrcByClass = append([]uint64(nil), p.dec.SrcByClass...)
	d.DstByClass = append([]uint64(nil), p.dec.DstByClass...)
	d.EvictsBySub = append([]uint64(nil), p.dec.EvictsBySub...)
	d.EvictedPenalty = append([]float64(nil), p.dec.EvictedPenalty...)
	return d
}

// findVictim returns the cheapest candidate slab among donor classes owning
// more than minSlabs slabs (the requesting class is always eligible: its
// "donation" is an in-place replacement). A class sitting on a full slab's
// worth of free slots donates at zero cost. A subclass is only a candidate
// when its own candidate segment (plus the class's free slots) covers one
// slab — otherwise the donation would spill evictions into sibling
// subclasses whose items were never priced into the candidate's value.
func (p *PAMA) findVictim(class, minSlabs int) (bestC, bestS int, bestVal float64) {
	c := p.c
	bestC, bestS, bestVal = -1, -1, math.Inf(1)
	for d := 0; d < c.NumClasses(); d++ {
		if c.Slabs(d) == 0 || (d != class && c.Slabs(d) <= minSlabs) {
			continue
		}
		need := c.SlotsPerSlab(d) - c.FreeSlots(d)
		if need <= 0 {
			if bestVal > 0 || bestC < 0 {
				bestC, bestS, bestVal = d, p.largestSub(d), 0
			}
			continue
		}
		for s := 0; s < c.NumSubclasses(); s++ {
			if c.SubLen(d, s) < need {
				continue
			}
			if v := p.OutgoingValue(d, s); v < bestVal {
				bestC, bestS, bestVal = d, s, v
			}
		}
	}
	return bestC, bestS, bestVal
}

// shiftOut slides (class, sub)'s outgoing accumulators one segment down
// after its candidate slab was evicted: the first reference segment becomes
// the new candidate, inheriting its history (the reason reference segments
// exist, paper §III).
func (p *PAMA) shiftOut(class, sub int) {
	shift := func(a []float64) {
		copy(a, a[1:])
		a[len(a)-1] = 0
	}
	shift(p.out[class][sub])
	shift(p.outPrev[class][sub])
}

// shiftIn slides (class, sub)'s incoming accumulators one segment down
// after the subclass received a slab: the receiving segment's demand is now
// servable, and the next ghost segment moves up.
func (p *PAMA) shiftIn(class, sub int) {
	shift := func(a []float64) {
		copy(a, a[1:])
		a[len(a)-1] = 0
	}
	shift(p.in[class][sub])
	shift(p.inPrev[class][sub])
}

// migrate performs the slab move with value-history maintenance.
func (p *PAMA) migrate(fromC, fromS, toC, toS int) bool {
	if err := p.c.MigrateSlab(fromC, maxInt(fromS, 0), toC); err != nil {
		return false
	}
	p.dec.Migrations++
	p.dec.SrcByClass[fromC]++
	p.dec.DstByClass[toC]++
	if fromS >= 0 {
		p.shiftOut(fromC, fromS)
	}
	p.shiftIn(toC, toS)
	return true
}

// MakeRoom implements cache.Policy.
func (p *PAMA) MakeRoom(class, sub int) {
	c := p.c
	// Donors keep at least one slab so no class is starved into
	// unservability (every production rebalancer has this guard); when no
	// two-slab donor exists the guard relaxes.
	bestC, bestS, bestVal := p.findVictim(class, 1)
	if bestC < 0 {
		bestC, bestS, bestVal = p.findVictim(class, 0)
	}
	if bestC < 0 {
		// No class owns a slab — nothing PAMA can do; the engine will
		// fail the SET.
		return
	}

	if c.Slabs(class) == 0 {
		// The requesting class cannot replace in place; it must
		// receive a slab no matter the price.
		if bestC == class {
			// Unreachable (class owns no slabs), defensive.
			return
		}
		if p.migrate(bestC, bestS, class, sub) {
			p.dec.Forced++
		}
		return
	}

	if bestC == class {
		// Paper scenario 2: cheapest candidate is local — replace one
		// item, no cross-class migration.
		p.dec.SameClass++
		p.evictWithin(class)
		return
	}

	if p.IncomingValue(class, sub) <= bestVal {
		// Paper scenario 1: the grant would be worth less than the
		// donor's loss — keep allocations, replace in place.
		p.dec.NotWorthIt++
		p.evictWithin(class)
		return
	}

	if !p.migrate(bestC, bestS, class, sub) {
		p.evictWithin(class)
	}
}

// evictWithin replaces one item inside class, preferring the subclass with
// the cheapest candidate segment.
func (p *PAMA) evictWithin(class int) {
	c := p.c
	bestS, bestVal := -1, math.Inf(1)
	for s := 0; s < c.NumSubclasses(); s++ {
		if c.SubLen(class, s) == 0 {
			continue
		}
		if v := p.OutgoingValue(class, s); v < bestVal {
			bestS, bestVal = s, v
		}
	}
	if bestS < 0 {
		return
	}
	c.EvictBottom(class, bestS)
}

// largestSub returns the most populated subclass of class (fallback donor
// stack when the class donates pure free space).
func (p *PAMA) largestSub(class int) int {
	best, bestN := 0, -1
	for s := 0; s < p.c.NumSubclasses(); s++ {
		if n := p.c.SubLen(class, s); n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- Cross-tenant arbitration (cache.TenantValuer) ----
// The tenant arbiter prices slabs across engines with the same accumulators
// MakeRoom uses within one engine: a tenant's marginal gain is its best
// incoming-slab value, its marginal loss the cheapest candidate slab it
// could give up. Called with the engine lock held, like every hook.

// CheapestOutgoing implements cache.TenantValuer: the cheapest candidate
// slab over every class that can spare one. Like MakeRoom, it prefers
// donors keeping at least one slab and relaxes to any class when no class
// owns two — small tenants must still be priceable, or they could never
// fund a starving neighbor.
func (p *PAMA) CheapestOutgoing() (class, sub int, v float64, ok bool) {
	bestC, bestS, bestVal := p.findVictim(-1, 1)
	if bestC < 0 {
		bestC, bestS, bestVal = p.findVictim(-1, 0)
	}
	if bestC < 0 {
		// No single subclass covers a slab's worth: a donation would
		// drain bottoms across the class's subclasses (DonateSlab's
		// fallback loop), so price it as the sum of the class's
		// subclass outgoing values and pick the cheapest class.
		c := p.c
		bestVal = math.Inf(1)
		for d := 0; d < c.NumClasses(); d++ {
			if c.Slabs(d) == 0 {
				continue
			}
			var sum float64
			for s := 0; s < c.NumSubclasses(); s++ {
				sum += p.OutgoingValue(d, s)
			}
			if sum < bestVal {
				bestC, bestS, bestVal = d, p.largestSub(d), sum
			}
		}
	}
	if bestC < 0 {
		return 0, 0, 0, false
	}
	return bestC, maxInt(bestS, 0), bestVal, true
}

// BestIncoming implements cache.TenantValuer: the largest incoming-slab
// value over all (class, subclass) ghost regions.
func (p *PAMA) BestIncoming() float64 {
	var best float64
	for cl := 0; cl < p.c.NumClasses(); cl++ {
		for s := 0; s < p.c.NumSubclasses(); s++ {
			if v := p.IncomingValue(cl, s); v > best {
				best = v
			}
		}
	}
	return best
}

// NoteDonated implements cache.TenantValuer: the donated slab's candidate
// history rolls down exactly as after an internal migration.
func (p *PAMA) NoteDonated(class, sub int) {
	p.dec.Migrations++
	p.dec.SrcByClass[class]++
	if sub >= 0 {
		p.shiftOut(class, sub)
	}
}

var (
	_ cache.Policy           = (*PAMA)(nil)
	_ cache.DecisionReporter = (*PAMA)(nil)
	_ cache.TenantValuer     = (*PAMA)(nil)
)
