package core

import (
	"fmt"
	"sort"

	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/workload"
)

// CalibrateBounds derives penalty subclass edges from the workload itself
// instead of the paper's fixed decade boundaries: it samples n keys from
// the workload's size and penalty models and places k-quantile cut points
// so that each subclass receives roughly equal key mass.
//
// This is an extension beyond the paper, motivated by its own setup: the
// decade edges (1 ms/10 ms/100 ms/1 s) assume penalties spread evenly
// across decades, but a deployment whose penalties cluster in one decade
// would collapse most items into a single subclass and lose the isolation
// PAMA's valuation depends on. Quantile calibration adapts the edges to
// whatever distribution the cache actually observes.
// BenchmarkAblationBounds compares the two.
func CalibrateBounds(cfg workload.Config, n, k int) ([]float64, error) {
	if n < k || k < 1 {
		return nil, fmt.Errorf("core: need at least %d samples for %d subclasses", k, k)
	}
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		h := kv.Mix64(uint64(i)*0x9e3779b97f4a7c15 + cfg.Seed)
		size := cfg.SizeOf(h)
		samples = append(samples, cfg.Penalty.Of(h, size))
	}
	sort.Float64s(samples)
	bounds := make([]float64, k)
	for i := 0; i < k-1; i++ {
		idx := (i + 1) * n / k
		if idx >= n {
			idx = n - 1
		}
		bounds[i] = samples[idx]
	}
	// The last edge must cover every producible penalty.
	bounds[k-1] = penalty.Cap
	// Edges must strictly increase for subclassing to be well defined;
	// merge degenerate cut points by nudging them apart.
	for i := 1; i < k; i++ {
		if bounds[i] <= bounds[i-1] {
			bounds[i] = bounds[i-1] * 1.0000001
		}
	}
	return bounds, nil
}
