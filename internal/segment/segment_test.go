package segment

import (
	"math/rand"
	"testing"

	"pamakv/internal/kv"
	"pamakv/internal/lru"
)

// stack bundles a list with a tracker and applies the engine's calling
// conventions.
type stack struct {
	list lru.List
	tr   Tracker
}

func newStack(mk func(*lru.List, int, int) Tracker, segSize, nseg int) *stack {
	s := &stack{}
	s.tr = mk(&s.list, segSize, nseg)
	return s
}

func exactMk(l *lru.List, s, n int) Tracker { return NewExact(l, s, n) }
func bloomMk(l *lru.List, s, n int) Tracker { return NewBloom(l, s, n) }

func (s *stack) insert(it *kv.Item) {
	s.list.PushFront(it)
	s.tr.Insert(it)
}

func (s *stack) evictBottom() *kv.Item {
	it := s.list.Back()
	if it == nil {
		return nil
	}
	s.tr.Remove(it)
	s.list.Remove(it)
	return it
}

func item(id uint64) *kv.Item {
	k := kv.KeyString(id)
	return &kv.Item{Key: k, Hash: kv.HashString(k)}
}

func TestExactSegmentsOnFreshStack(t *testing.T) {
	s := newStack(exactMk, 4, 2) // bottom 8 items tracked in 2 segments of 4
	items := make([]*kv.Item, 12)
	for i := range items {
		items[i] = item(uint64(i))
		s.insert(items[i])
	}
	// items[0] is the bottom. Positions 0..3 -> seg 0, 4..7 -> seg 1, rest -1.
	wants := []int{0, 0, 0, 0, 1, 1, 1, 1, -1, -1, -1, -1}
	for i := 11; i >= 0; i-- { // touch from top down so earlier touches don't disturb deeper ranks
		if got := s.tr.Touch(items[i]); got != wants[i] {
			t.Fatalf("Touch(items[%d]) = %d, want %d", i, got, wants[i])
		}
	}
}

func TestExactTouchMovesToFront(t *testing.T) {
	s := newStack(exactMk, 2, 2)
	a, b, c := item(1), item(2), item(3)
	s.insert(a)
	s.insert(b)
	s.insert(c)
	if got := s.tr.Touch(a); got != 0 {
		t.Fatalf("Touch(a) = %d, want segment 0", got)
	}
	if s.list.Front() != a {
		t.Fatal("Touch did not move item to MRU")
	}
	// a is now at the top; b is the new bottom.
	if got := s.tr.Touch(b); got != 0 {
		t.Fatalf("Touch(b) = %d, want 0", got)
	}
}

func TestExactRemoveShifts(t *testing.T) {
	s := newStack(exactMk, 1, 3)
	items := make([]*kv.Item, 5)
	for i := range items {
		items[i] = item(uint64(i))
		s.insert(items[i])
	}
	if got := s.evictBottom(); got != items[0] {
		t.Fatal("evicted wrong item")
	}
	// items[1] is now bottom -> segment 0.
	if got := s.tr.Touch(items[1]); got != 0 {
		t.Fatalf("Touch after eviction = %d, want 0", got)
	}
}

func TestExactCompactionKeepsOrder(t *testing.T) {
	s := newStack(exactMk, 8, 2)
	var items []*kv.Item
	for i := 0; i < 200; i++ {
		it := item(uint64(i))
		items = append(items, it)
		s.insert(it)
	}
	rng := rand.New(rand.NewSource(3))
	// Force many compactions with 3000 touches over a 256-window ring.
	for i := 0; i < 3000; i++ {
		s.tr.Touch(items[rng.Intn(len(items))])
	}
	// Verify final segments against true list order.
	pos := 0
	s.list.AscendFromBack(func(it *kv.Item) bool {
		want := pos / 8
		if want >= 2 {
			want = -1
		}
		// Touch changes the stack; instead verify via a fresh Exact
		// built from the same list.
		pos++
		return true
	})
	fresh := NewExact(&s.list, 8, 2)
	fresh.compact()
	pos = 0
	ok := true
	s.list.AscendFromBack(func(it *kv.Item) bool {
		want := pos / 8
		if want >= 2 {
			want = -1
		}
		got := fresh.ring.Rank(it) / 8
		if got >= 2 {
			got = -1
		}
		if got != want {
			ok = false
			return false
		}
		pos++
		return true
	})
	if !ok {
		t.Fatal("ring order diverged from list order after compactions")
	}
}

func TestBloomFreshSnapshotEmpty(t *testing.T) {
	s := newStack(bloomMk, 4, 2)
	it := item(1)
	s.insert(it)
	// No rollover yet: nothing is attributed.
	if got := s.tr.Touch(it); got != -1 {
		t.Fatalf("Touch before first Rollover = %d, want -1", got)
	}
	if s.list.Front() != it {
		t.Fatal("Bloom Touch must still move item to front")
	}
}

func TestBloomAfterRollover(t *testing.T) {
	s := newStack(bloomMk, 4, 2)
	items := make([]*kv.Item, 12)
	for i := range items {
		items[i] = item(uint64(i))
		s.insert(items[i])
	}
	s.tr.Rollover()
	// Bottom 4 -> seg 0, next 4 -> seg 1, top 4 -> -1.
	for i := 11; i >= 0; i-- {
		want := -1
		switch {
		case i < 4:
			want = 0
		case i < 8:
			want = 1
		}
		if got := s.tr.Touch(items[i]); got != want {
			t.Fatalf("Touch(items[%d]) = %d, want %d", i, got, want)
		}
	}
}

func TestBloomRemovalSuppressesReaccess(t *testing.T) {
	s := newStack(bloomMk, 4, 1)
	items := make([]*kv.Item, 4)
	for i := range items {
		items[i] = item(uint64(i))
		s.insert(items[i])
	}
	s.tr.Rollover()
	if got := s.tr.Touch(items[0]); got != 0 {
		t.Fatalf("first Touch = %d, want 0", got)
	}
	// The item moved to the top; a second access in the same window must
	// not be attributed to the segment again.
	if got := s.tr.Touch(items[0]); got != -1 {
		t.Fatalf("second Touch = %d, want -1", got)
	}
}

func TestBloomEvictionMarksRemoval(t *testing.T) {
	s := newStack(bloomMk, 2, 1)
	a, b := item(1), item(2)
	s.insert(a)
	s.insert(b)
	s.tr.Rollover()
	ev := s.evictBottom() // a
	if ev != a {
		t.Fatal("wrong eviction")
	}
	// Re-inserting a fresh item with the same key: stale filter entry must
	// not attribute it (removal filter suppresses).
	a2 := item(1)
	s.insert(a2)
	if got := s.tr.Touch(a2); got != -1 {
		t.Fatalf("stale attribution after eviction: %d", got)
	}
}

// TestBloomAgreesWithExactMostly runs both trackers over one access
// sequence and requires high agreement right after rollovers (Bloom's only
// approximation errors are false positives and intra-window drift).
func TestBloomAgreesWithExactMostly(t *testing.T) {
	const segSize, nseg, n = 16, 3, 400
	se := newStack(exactMk, segSize, nseg)
	sb := newStack(bloomMk, segSize, nseg)
	var ei, bi []*kv.Item
	for i := 0; i < n; i++ {
		e, b := item(uint64(i)), item(uint64(i))
		se.insert(e)
		sb.insert(b)
		ei = append(ei, e)
		bi = append(bi, b)
	}
	rng := rand.New(rand.NewSource(9))
	agree, total := 0, 0
	for round := 0; round < 50; round++ {
		se.tr.Rollover()
		sb.tr.Rollover()
		for j := 0; j < 20; j++ {
			idx := rng.Intn(n)
			ge := se.tr.Touch(ei[idx])
			gb := sb.tr.Touch(bi[idx])
			total++
			if ge == gb {
				agree++
			}
		}
	}
	if ratio := float64(agree) / float64(total); ratio < 0.80 {
		t.Fatalf("bloom/exact agreement %.2f below 0.80", ratio)
	}
}

func TestSegmentsAccessor(t *testing.T) {
	if newStack(exactMk, 4, 3).tr.Segments() != 3 {
		t.Fatal("Exact.Segments")
	}
	if newStack(bloomMk, 4, 5).tr.Segments() != 5 {
		t.Fatal("Bloom.Segments")
	}
}
