// Package segment tracks which slab-sized segment of an LRU stack's bottom
// region an access lands in — the measurement PAMA's slab valuation is built
// on (paper §III).
//
// The bottom of each subclass stack is divided into nseg segments of segSize
// items each: segment 0 is the candidate slab (the virtual slab that would
// be evicted if the subclass donates memory), segments 1..nseg-1 are the
// reference segments above it. Touch reports the segment an accessed item
// occupied, or -1 when the item is above the tracked region.
//
// Two implementations share the Tracker interface:
//
//   - Exact maintains an order-statistics ring (package rank) and computes
//     the item's true stack position on every access — O(log n), zero error.
//   - Bloom implements the paper's scheme: one Bloom filter per segment plus
//     a removal filter, rebuilt from a stack scan at every window rollover —
//     O(1) per access with bounded staleness and false-positive error.
//
// The engine can run either; BenchmarkAblationTracker compares them.
package segment

import (
	"pamakv/internal/bloom"
	"pamakv/internal/kv"
	"pamakv/internal/lru"
	"pamakv/internal/rank"
)

// Tracker attributes accesses on one LRU stack to bottom segments. The
// tracker owns the stack's LRU motion: Insert is called after the item has
// been pushed onto the list's MRU end, Remove before/after the item leaves
// the list, and Touch moves the item to the MRU end itself, so the tracker's
// internal order can never drift from the list order.
type Tracker interface {
	// Insert registers a brand-new item that the caller has just pushed
	// onto the list's MRU end.
	Insert(it *kv.Item)
	// Remove unregisters an item leaving the stack (eviction, delete,
	// migration), from any position.
	Remove(it *kv.Item)
	// Touch handles an access: it reports the segment the item occupied
	// (0 = candidate, 1..nseg-1 = reference, -1 = above the region) and
	// moves the item to the list's MRU end.
	Touch(it *kv.Item) int
	// Rollover marks a value-window boundary (Bloom rebuilds snapshots).
	Rollover()
	// Segments returns the number of tracked segments.
	Segments() int
}

// Exact is the ground-truth tracker.
type Exact struct {
	list    *lru.List
	ring    *rank.Ring
	segSize int
	nseg    int
}

// NewExact tracks nseg segments of segSize items at the bottom of list.
func NewExact(list *lru.List, segSize, nseg int) *Exact {
	return &Exact{list: list, ring: rank.New(256), segSize: segSize, nseg: nseg}
}

// Insert implements Tracker. The item must already be on the list's MRU
// end: when the sequence window is exhausted the tracker rebuilds itself
// from the list, which must therefore include the item.
func (e *Exact) Insert(it *kv.Item) {
	if e.ring.Full() {
		e.compact() // picks it up from the list's front
		return
	}
	e.ring.Insert(it)
}

// Remove implements Tracker.
func (e *Exact) Remove(it *kv.Item) { e.ring.Remove(it) }

// Touch implements Tracker.
func (e *Exact) Touch(it *kv.Item) int {
	pos := e.ring.Rank(it)
	e.ring.Remove(it)
	e.list.MoveToFront(it)
	if e.ring.Full() {
		e.compact() // re-registers it from its new front position
	} else {
		e.ring.Insert(it)
	}
	seg := pos / e.segSize
	if seg >= e.nseg {
		return -1
	}
	return seg
}

// Rollover implements Tracker (no-op: Exact is always current).
func (e *Exact) Rollover() {}

// Segments implements Tracker.
func (e *Exact) Segments() int { return e.nseg }

func (e *Exact) compact() {
	e.ring.Reset()
	e.list.AscendFromBack(func(x *kv.Item) bool {
		e.ring.Insert(x)
		return true
	})
}

// Bloom is the paper's approximate tracker.
type Bloom struct {
	list    *lru.List
	set     *bloom.SegmentSet
	segSize int
	nseg    int
}

// NewBloom tracks nseg segments of segSize items using per-segment Bloom
// filters; the snapshot is rebuilt on Rollover.
func NewBloom(list *lru.List, segSize, nseg int) *Bloom {
	b := &Bloom{
		list:    list,
		set:     bloom.NewSegmentSet(nseg, segSize),
		segSize: segSize,
		nseg:    nseg,
	}
	return b
}

// Insert implements Tracker. A new item enters at the MRU end, far above
// the bottom region, so the filters are untouched.
func (b *Bloom) Insert(*kv.Item) {}

// Remove implements Tracker: an eviction from the bottom region must not
// keep matching, so it is recorded in the removal filter.
func (b *Bloom) Remove(it *kv.Item) {
	if b.set.Lookup(it.Hash) >= 0 {
		b.set.MarkRemoved(it.Hash)
	}
}

// Touch implements Tracker: look the key up in the segment filters; on a
// match, record the key's departure from the region, then move the item to
// the MRU end.
func (b *Bloom) Touch(it *kv.Item) int {
	seg := b.set.Lookup(it.Hash)
	if seg >= 0 {
		b.set.MarkRemoved(it.Hash)
	}
	b.list.MoveToFront(it)
	return seg
}

// Rollover implements Tracker: rebuild the per-segment snapshots from the
// current stack bottom.
func (b *Bloom) Rollover() {
	b.set.Reset()
	i := 0
	b.list.AscendFromBack(func(it *kv.Item) bool {
		seg := i / b.segSize
		if seg >= b.nseg {
			return false
		}
		b.set.AddToSegment(seg, it.Hash)
		i++
		return true
	})
}

// Segments implements Tracker.
func (b *Bloom) Segments() int { return b.nseg }

// Interface conformance checks.
var (
	_ Tracker = (*Exact)(nil)
	_ Tracker = (*Bloom)(nil)
)
