package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func roundTripFile(t *testing.T, path string) {
	t.Helper()
	reqs := randomRequests(11, 200)
	write, closer, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	stream, rc, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := Collect(stream, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("%s: got %d records, want %d", path, len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("%s: record %d differs", path, i)
		}
	}
}

func TestFileFormats(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"t.trace", "t.trace.gz", "t.csv", "t.csv.gz"} {
		t.Run(name, func(t *testing.T) {
			roundTripFile(t, filepath.Join(dir, name))
		})
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, _, err := OpenFile("/nonexistent/path.trace"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gz")
	if err := writeBytes(bad, []byte("not gzip")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(bad); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
	raw := filepath.Join(dir, "bad.trace")
	if err := writeBytes(raw, []byte("JUNKJUNKJUNK")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(raw); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func writeBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
