package trace

import "pamakv/internal/penalty"

// PenaltyEstimator reproduces the paper's §IV estimation procedure for
// traces that carry timestamps but no penalties: "we estimate it with the
// time gap between the miss of a GET request and the SET of the same key
// immediately following"; gaps above 5 seconds are discarded (the client
// may not have refilled promptly), and keys without an estimate fall back
// to the 100 ms default.
//
// Usage during replay: call ObserveGetMiss when a GET misses, then
// ObserveSet when a SET arrives; Estimate returns the current belief for a
// key.
type PenaltyEstimator struct {
	// Default is used for keys without an observation (paper: 100 ms).
	Default float64
	// MaxGap discards implausibly long gaps (paper: 5 s).
	MaxGap float64

	pendingMiss map[uint64]uint64  // key -> timestamp (µs) of unresolved GET miss
	estimate    map[uint64]float64 // key -> penalty seconds
}

// NewPenaltyEstimator returns an estimator with the paper's constants.
func NewPenaltyEstimator() *PenaltyEstimator {
	return &PenaltyEstimator{
		Default:     penalty.DefaultUnknown,
		MaxGap:      penalty.Cap,
		pendingMiss: make(map[uint64]uint64),
		estimate:    make(map[uint64]float64),
	}
}

// ObserveGetMiss records that key missed at time tUS (microseconds).
func (e *PenaltyEstimator) ObserveGetMiss(key uint64, tUS uint64) {
	e.pendingMiss[key] = tUS
}

// ObserveSet resolves a pending miss: if a GET miss for key is outstanding
// and the gap is credible, the gap becomes the key's penalty estimate.
func (e *PenaltyEstimator) ObserveSet(key uint64, tUS uint64) {
	miss, ok := e.pendingMiss[key]
	if !ok {
		return
	}
	delete(e.pendingMiss, key)
	if tUS < miss {
		return // clock went backwards; ignore
	}
	gap := float64(tUS-miss) / 1e6
	if gap > e.MaxGap {
		return // paper: discard excessively large gaps
	}
	e.estimate[key] = gap
}

// Estimate returns the penalty belief for key, falling back to Default.
func (e *PenaltyEstimator) Estimate(key uint64) float64 {
	if p, ok := e.estimate[key]; ok {
		return p
	}
	return e.Default
}

// Known reports whether the key has a measured (non-default) estimate.
func (e *PenaltyEstimator) Known(key uint64) bool {
	_, ok := e.estimate[key]
	return ok
}
