package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func randomRequests(seed int64, n int) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{
			Op:   kv.Op(rng.Intn(3)),
			Key:  rng.Uint64(),
			Size: rng.Uint32(),
			Time: rng.Uint64(),
		}
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		reqs := randomRequests(seed, 100)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil || w.Count() != 100 {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(r, -1)
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range got {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("PA")); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Request{Op: kv.Get, Key: 1})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record gave err=%v, want non-EOF error", err)
	}
}

func TestReaderRejectsBadOp(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	rec := make([]byte, recordSize)
	rec[0] = 99
	buf.Write(rec)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	reqs := randomRequests(7, 50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &SliceStream{Reqs: reqs}); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewCSVReader(&buf), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d records, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
}

func TestCSVReaderBadRows(t *testing.T) {
	cases := []string{
		"op,key,size,time_us\nfrob,1,2,3\n",
		"op,key,size,time_us\nget,notanum,2,3\n",
		"op,key,size,time_us\nget,1,notanum,3\n",
		"op,key,size,time_us\nget,1,2,notanum\n",
	}
	for i, c := range cases {
		r := NewCSVReader(strings.NewReader(c))
		if _, err := r.Next(); err == nil {
			t.Errorf("case %d: bad row accepted", i)
		}
	}
}

func TestCollectLimit(t *testing.T) {
	reqs := randomRequests(1, 10)
	got, err := Collect(&SliceStream{Reqs: reqs}, 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("Collect(3) = %d records, err=%v", len(got), err)
	}
}

func TestConcat(t *testing.T) {
	a := randomRequests(1, 3)
	b := randomRequests(2, 2)
	c := &Concat{Streams: []Stream{&SliceStream{Reqs: a}, &SliceStream{}, &SliceStream{Reqs: b}}}
	got, err := Collect(c, -1)
	if err != nil || len(got) != 5 {
		t.Fatalf("Concat yielded %d, err=%v", len(got), err)
	}
	if got[3] != b[0] {
		t.Fatal("Concat order wrong")
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{S: &SliceStream{Reqs: randomRequests(1, 10)}, N: 4}
	got, err := Collect(l, -1)
	if err != nil || len(got) != 4 {
		t.Fatalf("Limit yielded %d, err=%v", len(got), err)
	}
}

func TestBurstInjectsAtPosition(t *testing.T) {
	base := make([]Request, 6)
	for i := range base {
		base[i] = Request{Op: kv.Get, Key: uint64(i)}
	}
	inject := []Request{{Op: kv.Set, Key: 100}, {Op: kv.Set, Key: 101}}
	b := &Burst{S: &SliceStream{Reqs: base}, At: 3, Inject: &SliceStream{Reqs: inject}}
	got, err := Collect(b, -1)
	if err != nil || len(got) != 8 {
		t.Fatalf("Burst yielded %d, err=%v", len(got), err)
	}
	wantKeys := []uint64{0, 1, 2, 100, 101, 3, 4, 5}
	for i, k := range wantKeys {
		if got[i].Key != k {
			t.Fatalf("position %d: key %d, want %d (seq %v)", i, got[i].Key, k, got)
		}
	}
}

func TestBurstAtZero(t *testing.T) {
	b := &Burst{
		S:      &SliceStream{Reqs: []Request{{Key: 1}}},
		At:     0,
		Inject: &SliceStream{Reqs: []Request{{Key: 9}}},
	}
	got, _ := Collect(b, -1)
	if len(got) != 2 || got[0].Key != 9 || got[1].Key != 1 {
		t.Fatalf("burst at 0: %v", got)
	}
}

func TestBurstBeyondEnd(t *testing.T) {
	b := &Burst{
		S:      &SliceStream{Reqs: []Request{{Key: 1}}},
		At:     100,
		Inject: &SliceStream{Reqs: []Request{{Key: 9}}},
	}
	got, _ := Collect(b, -1)
	if len(got) != 1 {
		t.Fatalf("burst past end should never fire, got %v", got)
	}
}

func TestTee(t *testing.T) {
	var seen []uint64
	tee := &Tee{
		S:  &SliceStream{Reqs: []Request{{Key: 1}, {Key: 2}}},
		Fn: func(r Request) { seen = append(seen, r.Key) },
	}
	Collect(tee, -1)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("Tee saw %v", seen)
	}
}

func TestEstimatorBasic(t *testing.T) {
	e := NewPenaltyEstimator()
	if e.Estimate(5) != e.Default || e.Known(5) {
		t.Fatal("fresh key should use default")
	}
	e.ObserveGetMiss(5, 1_000_000)
	e.ObserveSet(5, 1_250_000) // 250ms gap
	if !e.Known(5) {
		t.Fatal("estimate not recorded")
	}
	if got := e.Estimate(5); got < 0.249 || got > 0.251 {
		t.Fatalf("Estimate = %v, want 0.25", got)
	}
}

func TestEstimatorDiscardsLongGaps(t *testing.T) {
	e := NewPenaltyEstimator()
	e.ObserveGetMiss(1, 0)
	e.ObserveSet(1, 10_000_000) // 10s > 5s cap
	if e.Known(1) {
		t.Fatal("gap above cap should be discarded")
	}
}

func TestEstimatorIgnoresUnmatchedSet(t *testing.T) {
	e := NewPenaltyEstimator()
	e.ObserveSet(1, 100)
	if e.Known(1) {
		t.Fatal("SET without pending miss should not create estimate")
	}
}

func TestEstimatorClockBackwards(t *testing.T) {
	e := NewPenaltyEstimator()
	e.ObserveGetMiss(1, 1000)
	e.ObserveSet(1, 500)
	if e.Known(1) {
		t.Fatal("backwards clock should be ignored")
	}
}

func TestEstimatorResolvesOnce(t *testing.T) {
	e := NewPenaltyEstimator()
	e.ObserveGetMiss(1, 0)
	e.ObserveSet(1, 1_000_000)
	e.ObserveSet(1, 9_000_000) // no pending miss anymore; must not overwrite
	if got := e.Estimate(1); got < 0.99 || got > 1.01 {
		t.Fatalf("Estimate = %v, want 1.0", got)
	}
}
