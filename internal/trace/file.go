package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// OpenFile opens a trace file for reading, transparently handling the
// formats the tools write: binary (default), CSV (".csv"), and gzip
// compression (".gz" suffix on either). The returned closer must be closed
// by the caller; it closes every layer.
func OpenFile(path string) (Stream, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	closers := multiCloser{f}
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			closers.Close()
			return nil, nil, fmt.Errorf("trace: opening gzip %s: %w", path, err)
		}
		closers = append(closers, gz)
		r = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	if strings.HasSuffix(name, ".csv") {
		return NewCSVReader(r), closers, nil
	}
	tr, err := NewReader(r)
	if err != nil {
		closers.Close()
		return nil, nil, err
	}
	return tr, closers, nil
}

// CreateFile creates a trace sink at path with the same convention as
// OpenFile: ".csv" selects CSV, ".gz" adds gzip. The returned function
// writes one record; call the closer to flush and close everything.
func CreateFile(path string) (write func(Request) error, closer io.Closer, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	closers := multiCloser{f}
	var w io.Writer = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		gz := gzip.NewWriter(w)
		closers = append([]io.Closer{gz}, closers...) // close gzip before file
		w = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	if strings.HasSuffix(name, ".csv") {
		// CSV wants a Stream; adapt with a small push buffer.
		pw := &pushCSV{w: w}
		closers = append([]io.Closer{pw}, closers...)
		return pw.write, closers, nil
	}
	tw, err := NewWriter(w)
	if err != nil {
		closers.Close()
		return nil, nil, err
	}
	closers = append([]io.Closer{flushCloser{tw}}, closers...)
	return tw.Write, closers, nil
}

type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

type flushCloser struct{ w *Writer }

func (f flushCloser) Close() error { return f.w.Flush() }

// pushCSV renders records to CSV incrementally.
type pushCSV struct {
	w      io.Writer
	header bool
}

func (p *pushCSV) write(r Request) error {
	if !p.header {
		p.header = true
		if _, err := fmt.Fprintln(p.w, "op,key,size,time_us"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(p.w, "%s,%d,%d,%d\n", r.Op, r.Key, r.Size, r.Time)
	return err
}

func (p *pushCSV) Close() error { return nil }
