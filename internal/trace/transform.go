package trace

import (
	"errors"
	"io"
)

// Concat chains streams end to end.
type Concat struct {
	Streams []Stream
	i       int
}

// Next implements Stream.
func (c *Concat) Next() (Request, error) {
	for c.i < len(c.Streams) {
		r, err := c.Streams[c.i].Next()
		if errors.Is(err, io.EOF) {
			c.i++
			continue
		}
		return r, err
	}
	return Request{}, io.EOF
}

// Limit truncates a stream after N requests.
type Limit struct {
	S Stream
	N uint64
	n uint64
}

// Next implements Stream.
func (l *Limit) Next() (Request, error) {
	if l.n >= l.N {
		return Request{}, io.EOF
	}
	r, err := l.S.Next()
	if err == nil {
		l.n++
	}
	return r, err
}

// Burst injects a contiguous run of requests after At requests of the
// underlying stream have been delivered, implementing the paper's §IV-C
// cold-item flood (a bursty stream of SETs for never-before-seen keys).
type Burst struct {
	S Stream
	// At is the position (in underlying requests) where the burst starts.
	At uint64
	// Inject supplies the burst requests; nil ends the burst.
	Inject Stream

	delivered uint64
	bursting  bool
	done      bool
}

// Next implements Stream.
func (b *Burst) Next() (Request, error) {
	if !b.done && !b.bursting && b.delivered == b.At {
		b.bursting = true
	}
	if b.bursting {
		r, err := b.Inject.Next()
		if err == nil {
			return r, nil
		}
		if !errors.Is(err, io.EOF) {
			return Request{}, err
		}
		b.bursting, b.done = false, true
	}
	r, err := b.S.Next()
	if err == nil {
		b.delivered++
	}
	return r, err
}

// Tee copies every request delivered from S to the callback (metrics taps,
// trace capture during simulation).
type Tee struct {
	S  Stream
	Fn func(Request)
}

// Next implements Stream.
func (t *Tee) Next() (Request, error) {
	r, err := t.S.Next()
	if err == nil && t.Fn != nil {
		t.Fn(r)
	}
	return r, err
}
