// Package trace defines the request-trace representation used throughout
// the repository: the in-memory Request record, a compact binary on-disk
// format with a CSV twin, stream transforms (concatenation, repetition,
// burst injection), and the GET-miss→SET penalty estimator the paper applies
// to the Facebook traces.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"pamakv/internal/kv"
)

// Request is one trace record. Key is the numeric key id (kv.KeyString maps
// it to the engine's string keyspace); Size is the item's total footprint in
// bytes; Time is a logical timestamp in microseconds (0 when the source has
// no timing).
type Request struct {
	Op   kv.Op
	Key  uint64
	Size uint32
	Time uint64
}

// Stream produces requests one at a time; Next returns io.EOF at the end.
// All generators and readers in this repository implement Stream.
type Stream interface {
	Next() (Request, error)
}

// SliceStream serves requests from a slice (tests and small tools).
type SliceStream struct {
	Reqs []Request
	i    int
}

// Next implements Stream.
func (s *SliceStream) Next() (Request, error) {
	if s.i >= len(s.Reqs) {
		return Request{}, io.EOF
	}
	r := s.Reqs[s.i]
	s.i++
	return r, nil
}

// Collect drains up to limit requests from a stream (limit<0 means all).
func Collect(s Stream, limit int) ([]Request, error) {
	var out []Request
	for limit < 0 || len(out) < limit {
		r, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ---- Binary format ----
//
// Header: magic "PAMATRC1" (8 bytes). Records: fixed 21 bytes each,
// little-endian: op(1) key(8) size(4) time(8).

var magic = [8]byte{'P', 'A', 'M', 'A', 'T', 'R', 'C', '1'}

const recordSize = 21

// Writer streams requests to a binary trace.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Request) error {
	if t.err != nil {
		return t.err
	}
	var buf [recordSize]byte
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(buf[1:], r.Key)
	binary.LittleEndian.PutUint32(buf[9:], r.Size)
	binary.LittleEndian.PutUint64(buf[13:], r.Time)
	if _, err := t.w.Write(buf[:]); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count returns records written.
func (t *Writer) Count() uint64 { return t.n }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader streams requests from a binary trace; it implements Stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got[:])
	}
	return &Reader{r: br}, nil
}

// Next implements Stream.
func (t *Reader) Next() (Request, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Request{}, io.EOF
		}
		return Request{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	op := kv.Op(buf[0])
	if op > kv.Delete {
		return Request{}, fmt.Errorf("trace: invalid op %d", buf[0])
	}
	return Request{
		Op:   op,
		Key:  binary.LittleEndian.Uint64(buf[1:]),
		Size: binary.LittleEndian.Uint32(buf[9:]),
		Time: binary.LittleEndian.Uint64(buf[13:]),
	}, nil
}

// ---- CSV format: op,key,size,time ----

// WriteCSV renders a stream as CSV with a header row.
func WriteCSV(w io.Writer, s Stream) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"op", "key", "size", "time_us"}); err != nil {
		return err
	}
	for {
		r, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		rec := []string{
			r.Op.String(),
			strconv.FormatUint(r.Key, 10),
			strconv.FormatUint(uint64(r.Size), 10),
			strconv.FormatUint(r.Time, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVReader streams requests from CSV produced by WriteCSV; it implements
// Stream.
type CSVReader struct {
	r      *csv.Reader
	header bool
}

// NewCSVReader wraps r.
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	return &CSVReader{r: cr}
}

// Next implements Stream.
func (c *CSVReader) Next() (Request, error) {
	for {
		rec, err := c.r.Read()
		if errors.Is(err, io.EOF) {
			return Request{}, io.EOF
		}
		if err != nil {
			return Request{}, err
		}
		if !c.header {
			c.header = true
			if rec[0] == "op" {
				continue
			}
		}
		var op kv.Op
		switch rec[0] {
		case "get":
			op = kv.Get
		case "set":
			op = kv.Set
		case "delete":
			op = kv.Delete
		default:
			return Request{}, fmt.Errorf("trace: unknown op %q", rec[0])
		}
		key, err := strconv.ParseUint(rec[1], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: bad key %q: %w", rec[1], err)
		}
		size, err := strconv.ParseUint(rec[2], 10, 32)
		if err != nil {
			return Request{}, fmt.Errorf("trace: bad size %q: %w", rec[2], err)
		}
		ts, err := strconv.ParseUint(rec[3], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: bad time %q: %w", rec[3], err)
		}
		return Request{Op: op, Key: key, Size: uint32(size), Time: ts}, nil
	}
}
