package lru

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func keys(l *List) []string {
	var out []string
	for it := l.Front(); it != nil; it = it.Next {
		out = append(out, it.Key)
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariants verifies link symmetry, head/tail consistency, and length.
func checkInvariants(t *testing.T, l *List) {
	t.Helper()
	n := 0
	var prev *kv.Item
	for it := l.Front(); it != nil; it = it.Next {
		if it.Prev != prev {
			t.Fatalf("broken Prev link at position %d", n)
		}
		prev = it
		n++
	}
	if prev != l.Back() {
		t.Fatal("tail does not match last node")
	}
	if n != l.Len() {
		t.Fatalf("Len()=%d but walked %d nodes", l.Len(), n)
	}
}

func TestEmptyList(t *testing.T) {
	var l List
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("zero List not empty")
	}
	if l.PopBack() != nil || l.PopFront() != nil {
		t.Fatal("pop on empty list should return nil")
	}
}

func TestPushFrontOrder(t *testing.T) {
	var l List
	for _, k := range []string{"a", "b", "c"} {
		l.PushFront(&kv.Item{Key: k})
	}
	if got := keys(&l); !equal(got, []string{"c", "b", "a"}) {
		t.Fatalf("order = %v", got)
	}
	checkInvariants(t, &l)
}

func TestPushBackOrder(t *testing.T) {
	var l List
	for _, k := range []string{"a", "b", "c"} {
		l.PushBack(&kv.Item{Key: k})
	}
	if got := keys(&l); !equal(got, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v", got)
	}
	checkInvariants(t, &l)
}

func TestMoveToFront(t *testing.T) {
	var l List
	items := make([]*kv.Item, 3)
	for i, k := range []string{"a", "b", "c"} {
		items[i] = &kv.Item{Key: k}
		l.PushBack(items[i])
	}
	l.MoveToFront(items[2]) // c a b
	l.MoveToFront(items[2]) // no-op when already front
	if got := keys(&l); !equal(got, []string{"c", "a", "b"}) {
		t.Fatalf("order = %v", got)
	}
	l.MoveToFront(items[1]) // b c a
	if got := keys(&l); !equal(got, []string{"b", "c", "a"}) {
		t.Fatalf("order = %v", got)
	}
	checkInvariants(t, &l)
}

func TestRemoveMiddleEnds(t *testing.T) {
	var l List
	items := make([]*kv.Item, 5)
	for i := range items {
		items[i] = &kv.Item{Key: string(rune('a' + i))}
		l.PushBack(items[i])
	}
	l.Remove(items[2])
	l.Remove(items[0])
	l.Remove(items[4])
	if got := keys(&l); !equal(got, []string{"b", "d"}) {
		t.Fatalf("order = %v", got)
	}
	if items[2].Prev != nil || items[2].Next != nil {
		t.Fatal("removed item retains links")
	}
	checkInvariants(t, &l)
}

func TestPopBackDrains(t *testing.T) {
	var l List
	for i := 0; i < 4; i++ {
		l.PushFront(&kv.Item{Key: string(rune('a' + i))})
	}
	var got []string
	for it := l.PopBack(); it != nil; it = l.PopBack() {
		got = append(got, it.Key)
	}
	if !equal(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("pop order = %v", got)
	}
	if l.Len() != 0 {
		t.Fatal("list not drained")
	}
}

func TestAscendFromBackStops(t *testing.T) {
	var l List
	for i := 0; i < 5; i++ {
		l.PushFront(&kv.Item{Key: string(rune('a' + i))})
	}
	var visited []string
	l.AscendFromBack(func(it *kv.Item) bool {
		visited = append(visited, it.Key)
		return len(visited) < 2
	})
	if !equal(visited, []string{"a", "b"}) {
		t.Fatalf("visited = %v", visited)
	}
}

func TestCollectFromBack(t *testing.T) {
	var l List
	for i := 0; i < 5; i++ {
		l.PushFront(&kv.Item{Key: string(rune('a' + i))})
	}
	got := l.CollectFromBack(3)
	if len(got) != 3 || got[0].Key != "a" || got[1].Key != "b" || got[2].Key != "c" {
		t.Fatalf("CollectFromBack = %v", got)
	}
	if len(l.CollectFromBack(99)) != 5 {
		t.Fatal("CollectFromBack should clamp to Len")
	}
	if l.CollectFromBack(0) != nil || l.CollectFromBack(-1) != nil {
		t.Fatal("CollectFromBack(<=0) should be nil")
	}
}

// TestAgainstModel drives the list with random operations mirrored in a plain
// slice model and checks the orders agree throughout.
func TestAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l List
		var model []*kv.Item // front..back
		find := func(it *kv.Item) int {
			for i, m := range model {
				if m == it {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 300; op++ {
			switch r := rng.Intn(5); {
			case r == 0 || len(model) == 0:
				it := &kv.Item{Key: kv.KeyString(uint64(op))}
				l.PushFront(it)
				model = append([]*kv.Item{it}, model...)
			case r == 1:
				it := &kv.Item{Key: kv.KeyString(uint64(op))}
				l.PushBack(it)
				model = append(model, it)
			case r == 2:
				i := rng.Intn(len(model))
				l.MoveToFront(model[i])
				it := model[i]
				model = append(model[:i], model[i+1:]...)
				model = append([]*kv.Item{it}, model...)
			case r == 3:
				i := rng.Intn(len(model))
				l.Remove(model[i])
				model = append(model[:i], model[i+1:]...)
			case r == 4:
				it := l.PopBack()
				if it == nil {
					return len(model) == 0
				}
				if find(it) != len(model)-1 {
					return false
				}
				model = model[:len(model)-1]
			}
			if l.Len() != len(model) {
				return false
			}
		}
		i := 0
		for it := l.Front(); it != nil; it = it.Next {
			if i >= len(model) || model[i] != it {
				return false
			}
			i++
		}
		return i == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
