// Package lru implements the intrusive doubly-linked list used for every LRU
// stack in the cache: resident subclass stacks and ghost regions alike.
//
// The list links live inside kv.Item (Prev/Next), so pushing, moving, and
// removing are allocation-free pointer operations. Following the paper's
// vocabulary, the MRU end is the *top* of the stack and the LRU end the
// *bottom*; eviction candidates sit at the bottom.
package lru

import "pamakv/internal/kv"

// List is an intrusive LRU stack of kv.Items. The zero value is an empty
// list ready to use.
type List struct {
	head *kv.Item // MRU (top)
	tail *kv.Item // LRU (bottom)
	n    int
}

// Len returns the number of items on the stack.
func (l *List) Len() int { return l.n }

// Front returns the MRU item, or nil when empty.
func (l *List) Front() *kv.Item { return l.head }

// Back returns the LRU item (the next eviction victim), or nil when empty.
func (l *List) Back() *kv.Item { return l.tail }

// PushFront places it at the MRU position. The item must not be on any list.
func (l *List) PushFront(it *kv.Item) {
	it.Prev = nil
	it.Next = l.head
	if l.head != nil {
		l.head.Prev = it
	} else {
		l.tail = it
	}
	l.head = it
	l.n++
}

// PushBack places it at the LRU position. The item must not be on any list.
// Ghost regions use this to append entries older than the current contents
// when rebuilding.
func (l *List) PushBack(it *kv.Item) {
	it.Next = nil
	it.Prev = l.tail
	if l.tail != nil {
		l.tail.Next = it
	} else {
		l.head = it
	}
	l.tail = it
	l.n++
}

// Remove unlinks it from the list. The item must be on this list.
func (l *List) Remove(it *kv.Item) {
	if it.Prev != nil {
		it.Prev.Next = it.Next
	} else {
		l.head = it.Next
	}
	if it.Next != nil {
		it.Next.Prev = it.Prev
	} else {
		l.tail = it.Prev
	}
	it.Prev, it.Next = nil, nil
	l.n--
}

// MoveToFront moves an on-list item to the MRU position.
func (l *List) MoveToFront(it *kv.Item) {
	if l.head == it {
		return
	}
	l.Remove(it)
	l.PushFront(it)
}

// PopBack removes and returns the LRU item, or nil when empty.
func (l *List) PopBack() *kv.Item {
	it := l.tail
	if it != nil {
		l.Remove(it)
	}
	return it
}

// PopFront removes and returns the MRU item, or nil when empty.
func (l *List) PopFront() *kv.Item {
	it := l.head
	if it != nil {
		l.Remove(it)
	}
	return it
}

// AscendFromBack calls fn for each item from the LRU end toward the MRU end
// until fn returns false or the list is exhausted. fn must not mutate the
// list; use CollectFromBack when the visit will evict.
func (l *List) AscendFromBack(fn func(*kv.Item) bool) {
	for it := l.tail; it != nil; it = it.Prev {
		if !fn(it) {
			return
		}
	}
}

// CollectFromBack returns up to n items counted from the LRU end, bottom
// first. The returned slice is freshly allocated; callers may remove the
// items afterwards.
func (l *List) CollectFromBack(n int) []*kv.Item {
	if n <= 0 {
		return nil
	}
	if n > l.n {
		n = l.n
	}
	out := make([]*kv.Item, 0, n)
	for it := l.tail; it != nil && len(out) < n; it = it.Prev {
		out = append(out, it)
	}
	return out
}
