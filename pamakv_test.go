package pamakv

import (
	"bufio"
	"net"
	"strings"
	"testing"
)

// The facade tests exercise the library the way a downstream user would:
// only identifiers exported from package pamakv.

func TestFacadeCacheLifecycle(t *testing.T) {
	c, err := New(Config{CacheBytes: 8 << 20, StoreValues: true}, NewPAMA(DefaultPAMAConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", 5, 0.25, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, flags, hit := c.Get("k", 0, 0, nil)
	if !hit || string(val) != "hello" || flags != 3 {
		t.Fatalf("get: %q %d %v", val, flags, hit)
	}
	if !c.Delete("k") {
		t.Fatal("delete failed")
	}
	if c.Stats().Sets != 1 {
		t.Fatal("stats not visible through facade")
	}
}

func TestFacadePolicyConstructors(t *testing.T) {
	pols := []Policy{
		NewPAMA(DefaultPAMAConfig()),
		NewPrePAMA(),
		NewStatic(),
		NewPSA(0),
		NewTwemcache(1),
		NewFacebookAge(),
	}
	for _, p := range pols {
		c, err := New(Config{CacheBytes: 4 << 20}, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := c.Set("x", 10, 0.01, 0, nil); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestFacadeWorkloadsAndModels(t *testing.T) {
	for _, cfg := range []WorkloadConfig{ETCWorkload(), APPWorkload()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		gen, err := NewWorkload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := gen.Next()
		if err != nil || r.Size == 0 {
			t.Fatalf("generator broken: %+v %v", r, err)
		}
	}
	m := DefaultPenaltyModel()
	if p := m.Of(HashKey("k"), 100); p <= 0 {
		t.Fatalf("penalty = %v", p)
	}
	if UniformPenaltyModel(0.2).Of(1, 1) != 0.2 {
		t.Fatal("uniform model broken")
	}
	if DefaultUnknownPenalty != 0.100 {
		t.Fatal("default unknown penalty changed")
	}
}

func TestFacadeSim(t *testing.T) {
	wl := ETCWorkload()
	wl.Keys = 1 << 13
	specs := []SimSpec{
		{
			Workload: wl, CacheBytes: 8 << 20, Requests: 30_000,
			MetricsWindow: 10_000, Policy: SimPolicySpec{Kind: "pama"},
			SampleSubClass: -1,
			Burst:          &SimBurstSpec{At: 10_000, FracOfCache: 0.05, Classes: []int{2, 3}},
		},
		{
			Workload: wl, CacheBytes: 8 << 20, Requests: 30_000,
			MetricsWindow: 10_000, Policy: SimPolicySpec{Kind: "psa"},
			SampleSubClass: -1,
		},
	}
	res, err := RunSimMatrix(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Series.MeanHitRatio() <= 0 {
			t.Fatalf("%s: empty series", r.Spec.Name)
		}
	}
	one, err := RunSim(specs[1])
	if err != nil || one.Stats.Gets == 0 {
		t.Fatalf("RunSim: %v", err)
	}
}

func TestFacadeServerRoundTrip(t *testing.T) {
	c, err := New(Config{CacheBytes: 8 << 20, StoreValues: true}, NewPrePAMA())
	if err != nil {
		t.Fatal(err)
	}
	wl := ETCWorkload()
	srv := NewServer(c, ServerOptions{Backend: NewBackend(wl.Penalty, wl.SizeOf)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	conn.Write([]byte("get readthrough-key\r\n"))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "VALUE readthrough-key") {
		t.Fatalf("read-through miss not served: %q", line)
	}
}

func TestFacadeShardedAndAlternativeEngines(t *testing.T) {
	g, err := NewSharded(Config{CacheBytes: 8 << 20, StoreValues: true}, 2,
		func() Policy { return NewPAMA(DefaultPAMAConfig()) })
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != 2 {
		t.Fatalf("shards = %d", g.Shards())
	}
	if err := g.Set("k", 10, 0.1, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, hit := g.Get("k", 0, 0, nil); !hit {
		t.Fatal("sharded get missed")
	}

	gd, err := NewGDSF(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	gd.Set("k", 10, 0.5, 0, []byte("v"))
	if _, _, hit := gd.Get("k", 0, 0, nil); !hit {
		t.Fatal("gdsf get missed")
	}

	for _, pol := range []Policy{NewMRC(ObjectiveMissRatio), NewLAMA(ObjectiveAvgTime)} {
		c, err := New(Config{CacheBytes: 4 << 20}, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := c.Set("x", 10, 0.01, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeCASAndTTL(t *testing.T) {
	c, err := New(Config{CacheBytes: 4 << 20, StoreValues: true}, NewStatic())
	if err != nil {
		t.Fatal(err)
	}
	c.SetTTL("k", 5, 0.1, 0, 1<<40, []byte("hello"))
	_, _, cas, hit := c.GetWithCAS("k", nil)
	if !hit || cas == 0 {
		t.Fatal("GetWithCAS through facade broken")
	}
	if !c.Touch("k", 1<<41) {
		t.Fatal("Touch through facade broken")
	}
	c.Set("n", 2, 0.1, 0, []byte("41"))
	if v, err := c.Delta("n", 1, false); err != nil || v != 42 {
		t.Fatalf("Delta: %d %v", v, err)
	}
}

func TestFacadeGeometryAndErrors(t *testing.T) {
	g := DefaultGeometry()
	if g.SlabSize != 1<<20 || g.NumClasses != 15 {
		t.Fatalf("geometry = %+v", g)
	}
	c, _ := New(Config{CacheBytes: 2 << 20}, NewStatic())
	if err := c.Set("huge", 4<<20, 0.1, 0, nil); err == nil {
		t.Fatal("oversized item accepted")
	}
	if KeyString(7) == "" || HashKey("x") == 0 {
		t.Fatal("key helpers broken")
	}
}
