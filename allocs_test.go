package pamakv

// Allocation regression guards for the hot paths the observability layer
// instruments: the per-(class,subclass) attribution counters added to the
// engine must stay allocation-free, or the instrumentation would tax every
// request it measures.

import (
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
)

// TestEngineGetHitAllocs pins the metadata-mode GET-hit path at zero
// allocations per request (the configuration BenchmarkEngineGetHit runs).
func TestEngineGetHitAllocs(t *testing.T) {
	c, err := cache.New(cache.Config{
		CacheBytes: 64 << 20,
		WindowLen:  1 << 40, // no rollovers: windows are not the path under test
		Tracker:    cache.TrackerExact,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 10
	keys := make([]string, n)
	for i := range keys {
		keys[i] = kv.KeyString(uint64(i))
		if err := c.Set(keys[i], 100, 0.01, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	allocs := testing.AllocsPerRun(5000, func() {
		c.Get(keys[i&(n-1)], 0, 0, nil)
		i++
	})
	if allocs != 0 {
		t.Fatalf("GET hit allocates %.1f objects per request, want 0", allocs)
	}
}
