package pamakv

// Allocation regression guards for the hot paths the observability layer
// instruments: the per-(class,subclass) attribution counters added to the
// engine must stay allocation-free, or the instrumentation would tax every
// request it measures.

import (
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/server"
)

// TestEngineGetHitAllocs pins the metadata-mode GET-hit path at zero
// allocations per request (the configuration BenchmarkEngineGetHit runs).
func TestEngineGetHitAllocs(t *testing.T) {
	c, err := cache.New(cache.Config{
		CacheBytes: 64 << 20,
		WindowLen:  1 << 40, // no rollovers: windows are not the path under test
		Tracker:    cache.TrackerExact,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 10
	keys := make([]string, n)
	for i := range keys {
		keys[i] = kv.KeyString(uint64(i))
		if err := c.Set(keys[i], 100, 0.01, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	allocs := testing.AllocsPerRun(5000, func() {
		c.Get(keys[i&(n-1)], 0, 0, nil)
		i++
	})
	if allocs != 0 {
		t.Fatalf("GET hit allocates %.1f objects per request, want 0", allocs)
	}
}

// liveServer boots a value-storing engine behind a real TCP listener and
// returns a connected client socket. Options{} disables read/write deadlines
// so the measurement sees only the serving path, not timer churn.
func liveServer(t *testing.T) (*server.Server, net.Conn) {
	t.Helper()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 24,
		StoreValues: true,
		WindowLen:   1 << 40,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(c, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, conn
}

// TestServedPipelinedGetHitAllocs is the tentpole's end-to-end gate: a
// pipelined batch of GET hits over live TCP — request parse, engine hit,
// response render, flush — must not allocate on the server side. The client
// side of the loop is itself allocation-free (prebuilt request bytes, exact
// preallocated response buffer), so AllocsPerRun's process-wide malloc count
// is the server's budget.
func TestServedPipelinedGetHitAllocs(t *testing.T) {
	const depth = 64
	_, conn := liveServer(t)
	body := strings.Repeat("v", 100)

	// Preload over the wire so the whole path under test is the public one.
	var fill []byte
	keys := make([]string, depth)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%03d", i)
		fill = append(fill, fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", keys[i], len(body), body)...)
	}
	if _, err := conn.Write(fill); err != nil {
		t.Fatal(err)
	}
	stored := make([]byte, depth*len("STORED\r\n"))
	if _, err := io.ReadFull(conn, stored); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(stored), "STORED\r\n") {
		t.Fatalf("preload reply %q", stored[:16])
	}

	var req, want []byte
	for _, k := range keys {
		req = append(req, "get "+k+"\r\n"...)
		want = append(want, fmt.Sprintf("VALUE %s 0 %d\r\n%s\r\nEND\r\n", k, len(body), body)...)
	}
	resp := make([]byte, len(want))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, resp); err != nil {
			t.Fatal(err)
		}
	})
	if string(resp) != string(want) {
		t.Fatalf("response diverged from expectation:\n%q", resp[:80])
	}
	perOp := allocs / depth
	if perOp > 0.25 {
		t.Fatalf("pipelined GET hit allocates %.3f objects per request end to end, want 0", perOp)
	}
}

// TestServedPipelinedSetAllocs gates the store path end to end: overwrite
// SETs of resident keys ride pooled parse buffers and reuse the slab slot, so
// the only per-request allocation left is the key clone handed to the engine.
func TestServedPipelinedSetAllocs(t *testing.T) {
	const depth = 64
	_, conn := liveServer(t)
	body := strings.Repeat("w", 100)

	var req []byte
	for i := 0; i < depth; i++ {
		req = append(req, fmt.Sprintf("set key%03d 0 0 %d\r\n%s\r\n", i, len(body), body)...)
	}
	resp := make([]byte, depth*len("STORED\r\n"))
	// First batch both preloads the keys and warms the connection scratch.
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, resp); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.HasSuffix(string(resp), "STORED\r\n") {
		t.Fatalf("reply tail %q", resp[len(resp)-16:])
	}
	perOp := allocs / depth
	if perOp > 2.5 {
		t.Fatalf("pipelined overwrite SET allocates %.2f objects per request end to end, want ~1 (key clone)", perOp)
	}
}
