// Benchmarks regenerating every figure of the paper's evaluation at reduced
// scale (one testing.B bench per figure — run a single iteration of each to
// smoke the full experiment pipeline), plus engine micro-benchmarks and the
// ablations DESIGN.md calls out. The full-scale figures come from
// cmd/pama-bench; EXPERIMENTS.md records their outputs against the paper.
package pamakv

import (
	"fmt"
	"io"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/oracle"
	"pamakv/internal/sim"
	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

// benchScale shrinks the figure experiments so a -bench=. sweep stays in
// seconds per figure; absolute numbers are meaningless at this scale — the
// figures for EXPERIMENTS.md come from cmd/pama-bench.
const benchScale = 0.01

func runFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := sim.FigureByID(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunMatrix(f.Specs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Render(io.Discard, res); err != nil {
			b.Fatal(err)
		}
		var gets uint64
		for _, r := range res {
			gets += r.Stats.Gets
		}
		b.ReportMetric(float64(gets)/float64(b.Elapsed().Seconds()), "gets/s")
	}
}

// BenchmarkFig1PenaltyModel samples the miss-penalty model (paper Fig. 1's
// penalty-vs-size scatter).
func BenchmarkFig1PenaltyModel(b *testing.B) {
	cfg := workload.APP()
	var sink float64
	for i := 0; i < b.N; i++ {
		h := kv.Mix64(uint64(i) * 0x9e3779b97f4a7c15)
		sink += cfg.Penalty.Of(h, cfg.SizeOf(h))
	}
	_ = sink
}

// BenchmarkFig3Allocation regenerates the per-class slab allocation series
// under the four schemes (paper Fig. 3).
func BenchmarkFig3Allocation(b *testing.B) { runFigure(b, "3") }

// BenchmarkFig4Subclasses regenerates PAMA's per-subclass allocation series
// for Classes 0 and 8 (paper Fig. 4).
func BenchmarkFig4Subclasses(b *testing.B) { runFigure(b, "4") }

// BenchmarkFig5HitRatioETC and BenchmarkFig6ServiceTimeETC regenerate the
// ETC matrix (papers Figs. 5 and 6 share runs: hit ratio and service time
// of the same experiments).
func BenchmarkFig5HitRatioETC(b *testing.B) { runFigure(b, "5") }

// BenchmarkFig6ServiceTimeETC is the service-time view of the same ETC runs.
func BenchmarkFig6ServiceTimeETC(b *testing.B) { runFigure(b, "6") }

// BenchmarkFig7HitRatioAPP and BenchmarkFig8ServiceTimeAPP regenerate the
// APP matrix with the trace played twice (papers Figs. 7 and 8).
func BenchmarkFig7HitRatioAPP(b *testing.B) { runFigure(b, "7") }

// BenchmarkFig8ServiceTimeAPP is the service-time view of the same APP runs.
func BenchmarkFig8ServiceTimeAPP(b *testing.B) { runFigure(b, "8") }

// BenchmarkFig9Burst regenerates the cold-burst impact experiment (paper
// Fig. 9).
func BenchmarkFig9Burst(b *testing.B) { runFigure(b, "9") }

// BenchmarkFig10Sensitivity regenerates the m-sensitivity sweep (paper
// Fig. 10).
func BenchmarkFig10Sensitivity(b *testing.B) { runFigure(b, "10") }

// ---- Engine micro-benchmarks ----

func benchCache(b *testing.B, pol cache.Policy, tracker cache.TrackerKind) *cache.Cache {
	b.Helper()
	c, err := cache.New(cache.Config{
		CacheBytes: 64 << 20,
		WindowLen:  100_000,
		Tracker:    tracker,
	}, pol)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkEngineGetHit measures the hit path under PAMA with exact
// tracking.
func BenchmarkEngineGetHit(b *testing.B) {
	c := benchCache(b, core.New(core.DefaultConfig()), cache.TrackerExact)
	const n = 1 << 14
	keys := make([]string, n)
	for i := range keys {
		keys[i] = kv.KeyString(uint64(i))
		c.Set(keys[i], 100, 0.01, 0, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i&(n-1)], 0, 0, nil)
	}
}

// BenchmarkEngineSetChurn measures steady-state insert+evict throughput.
func BenchmarkEngineSetChurn(b *testing.B) {
	c := benchCache(b, core.New(core.DefaultConfig()), cache.TrackerExact)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(kv.KeyString(uint64(i)), 200, 0.01, 0, nil)
	}
}

// BenchmarkEngineMixed measures a 90/10 get/set mix over a working set
// larger than the cache.
func BenchmarkEngineMixed(b *testing.B) {
	for _, tk := range []struct {
		name string
		kind cache.TrackerKind
	}{{"exact", cache.TrackerExact}, {"bloom", cache.TrackerBloom}} {
		b.Run(tk.name, func(b *testing.B) {
			c := benchCache(b, core.New(core.DefaultConfig()), tk.kind)
			wl := workload.ETC()
			wl.Keys = 1 << 16
			gen, err := workload.New(wl)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _ := gen.Next()
				key := kv.KeyString(r.Key)
				if r.Op == kv.Get {
					if _, _, hit := c.Get(key, int(r.Size), 0.01, nil); !hit {
						c.Set(key, int(r.Size), 0.01, 0, nil)
					}
				} else {
					c.Set(key, int(r.Size), 0.01, 0, nil)
				}
			}
		})
	}
}

// ---- Ablations (DESIGN.md §4) ----

func ablationSpec(kind string, mutate func(*sim.Spec)) sim.Spec {
	wl := workload.ETC()
	wl.Keys = 1 << 15
	s := sim.Spec{
		Name:           kind,
		Workload:       wl,
		CacheBytes:     32 << 20,
		Requests:       150_000,
		MetricsWindow:  50_000,
		Policy:         sim.PolicySpec{Kind: kind},
		SampleSubClass: -1,
	}
	if mutate != nil {
		mutate(&s)
	}
	return s
}

// BenchmarkAblationTracker compares PAMA under exact vs Bloom segment
// tracking: same workload, identical decisions wanted, different costs.
func BenchmarkAblationTracker(b *testing.B) {
	for _, tk := range []struct {
		name string
		kind cache.TrackerKind
	}{{"exact", cache.TrackerExact}, {"bloom", cache.TrackerBloom}} {
		b.Run(tk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationSpec("pama", func(s *sim.Spec) { s.Tracker = tk.kind }))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series.MeanHitRatio(), "hit-ratio")
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkAblationSubclasses varies how many penalty subclasses divide
// each class (paper fixes five; this probes the knob).
func BenchmarkAblationSubclasses(b *testing.B) {
	bounds := map[string][]float64{
		"1": {5.0},
		"3": {0.01, 0.5, 5.0},
		"5": {0.001, 0.01, 0.1, 1.0, 5.0},
		"8": {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 5.0},
	}
	for _, name := range []string{"1", "3", "5", "8"} {
		bs := bounds[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationSpec("pama", func(s *sim.Spec) {
					s.Policy.PAMA = core.Config{M: 2, PenaltyAware: true, Bounds: bs}
				}))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkAblationWindow varies the value-window length (accesses between
// rollovers of the segment-value accumulators).
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []uint64{5_000, 25_000, 100_000} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationSpec("pama", func(s *sim.Spec) { s.EngineWindow = w }))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkAblationBounds compares the paper's fixed decade subclass edges
// against workload-calibrated quantile edges (core.CalibrateBounds).
func BenchmarkAblationBounds(b *testing.B) {
	wl := workload.ETC()
	wl.Keys = 1 << 15
	calibrated, err := core.CalibrateBounds(wl, 20_000, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name   string
		bounds []float64
	}{
		{"paper-decades", nil}, // nil -> penalty.SubclassBounds
		{"quantile", calibrated},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationSpec("pama", func(s *sim.Spec) {
					s.Workload = wl
					s.Policy.PAMA = core.Config{M: 2, PenaltyAware: true, Bounds: cfg.bounds}
				}))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkExtensionMRCvsPAMA contrasts the LAMA-flavoured MRC allocator
// (average miss times, related work §II) with PAMA's per-item penalties on
// the APP workload — the paper's core argument that averages are not
// representative when penalties span three decades.
func BenchmarkExtensionMRCvsPAMA(b *testing.B) {
	wl := workload.APP()
	for _, kind := range []string{"mrc-hit", "mrc-time", "lama-hit", "lama-time", "pama"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Spec{
					Name: kind, Workload: wl, CacheBytes: 64 << 20,
					Requests: 200_000, MetricsWindow: 50_000,
					Policy: sim.PolicySpec{Kind: kind}, SampleSubClass: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series.MeanHitRatio(), "hit-ratio")
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkExtensionGDSF compares the slab-constrained PAMA against the
// item-granularity GreedyDual-Size-Frequency engine, which optimizes the
// same penalty-per-byte objective without slab mechanics — separating how
// much of PAMA's win is penalty awareness versus slab-granularity cost.
func BenchmarkExtensionGDSF(b *testing.B) {
	wl := workload.APP()
	for _, kind := range []string{"pre-pama", "pama", "gdsf"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Spec{
					Name: kind, Workload: wl, CacheBytes: 64 << 20,
					Requests: 200_000, MetricsWindow: 50_000,
					Policy: sim.PolicySpec{Kind: kind}, SampleSubClass: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series.MeanHitRatio(), "hit-ratio")
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkExtensionOracleBound relates the online policies to the offline
// clairvoyant references (Belady and its cost-aware variant): how much of
// the reachable service-time head-room does PAMA capture?
func BenchmarkExtensionOracleBound(b *testing.B) {
	wl := workload.ETC()
	wl.Keys = 1 << 15
	const capBytes, requests = 16 << 20, 150_000
	collect := func() []trace.Request {
		gen, err := workload.New(wl)
		if err != nil {
			b.Fatal(err)
		}
		reqs, err := trace.Collect(&trace.Limit{S: gen, N: requests}, -1)
		if err != nil {
			b.Fatal(err)
		}
		return reqs
	}
	for _, v := range []struct {
		name string
		kind oracle.Variant
	}{{"belady", oracle.Belady}, {"cost-belady", oracle.CostBelady}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := oracle.Run(collect(), capBytes, wl.Penalty, 0.0005, v.kind)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.HitRatio, "hit-ratio")
				b.ReportMetric(1e3*res.AvgService, "svc-ms")
			}
		})
	}
	for _, kind := range []string{"pama", "gdsf"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Spec{
					Name: kind, Workload: wl, CacheBytes: capBytes,
					Requests: requests, MetricsWindow: 50_000,
					Policy: sim.PolicySpec{Kind: kind}, SampleSubClass: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series.MeanHitRatio(), "hit-ratio")
				b.ReportMetric(1e3*res.Series.MeanAvgService(), "svc-ms")
			}
		})
	}
}

// BenchmarkPolicies runs the whole policy roster on one workload for a
// throughput overview (allocation-decision overhead included).
func BenchmarkPolicies(b *testing.B) {
	for _, kind := range []string{"memcached", "psa", "pama", "pre-pama", "twemcache", "facebook-age", "mrc-hit", "mrc-time", "lama-hit", "lama-time", "gdsf"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(ablationSpec(kind, nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
