module pamakv

go 1.22
